// RowHammer aggressor workloads. A HammerSource interleaves a victim
// workload's operation stream with reads crafted to hammer DRAM rows
// through the cache hierarchy: naive repeated reads of one address would be
// absorbed by the L1/LLC, so each aggressor thread cycles an eviction set —
// LLCWays+1 line addresses congruent modulo the LLC set stride. The set
// stride is an exact multiple of the per-bank row stride, so every group
// decodes to one (channel, bank) with rows a fixed hop apart.
//
// The eviction sets must not be shared carelessly: one set walked by every
// thread in lockstep coalesces in the MSHRs (16 threads, one DRAM read),
// and per-thread phases within one set leave most of it LLC-resident. So
// the source builds CoresPerSocket groups, each in its own LLC set, and
// assigns group tid%CoresPerSocket — exactly one core per socket walks each
// group, so every LLC observes a pure cyclic single-walker stream over
// ways+1 lines: a deterministic miss, and a DRAM activation on a closed or
// conflicting row, for every aggressor access.
//
// Placement is targeted, not random: the source replays a prefix of the
// victim's own deterministic stream to find its hottest shared DRAM row,
// and anchors the groups so that row neighbours the first aggressor rows.
// The victim row then provably holds data the workload touches early and
// re-reads often — flips there are observable by demand reads and patrol
// scrubbing, which is the defense under measurement.
package workload

import (
	"fmt"
	"math/rand"

	"dve/internal/topology"
)

// HammerSpec parameterises an adversarial run: a victim workload with
// aggressor reads blended in.
type HammerSpec struct {
	// Victim is the workload under attack; its stream is generated
	// unchanged (aggressor ops are interleaved, never substituted, so
	// Intensity 0 reproduces the victim stream exactly).
	Victim Spec
	// Intensity is the fraction of issued operations that are aggressor
	// reads, in [0, 1). 0 disarms the aggressor entirely.
	Intensity float64
	// DoubleSided builds two interleaved ladders bracketing the hot victim
	// row (aggressor rows one above and one below), the classic
	// double-sided hammer.
	DoubleSided bool
	// Seed drives the per-thread aggressor/victim interleaving draws; it is
	// independent of the victim's Seed. Ladder placement is a pure function
	// of the victim stream, not of this seed.
	Seed int64
}

// probeOpsPerThread is how many victim operations per thread the placement
// probe replays to find the hottest shared row. The probe prefix is exactly
// what the real run will issue first, so the hot row is both hot and
// touched early.
const probeOpsPerThread = 256

// HammerSource implements the runner's OpSource: a victim generator plus
// the aggressor ladder. Aggressor runs bind a global timeline (the ladder
// cursor and the hammer counters live on shared state), so runs driven by a
// HammerSource must execute on the legacy single-queue engine — which
// dve.RunConfig guarantees, because any external Source disqualifies the
// partitioned engine.
type HammerSource struct {
	victim    *Generator
	intensity float64
	ladder    []topology.Addr   // all groups, flattened (reporting/tests)
	groups    [][]topology.Addr // per-group eviction sets
	hotRow    topology.DRAMCoord
	hotSocket int

	rngs   []*rand.Rand
	cursor []int // per-thread position within the thread's group
}

// hotSharedRow replays a prefix of the victim stream and returns the
// (socket, coordinate) of its most-touched shared-region DRAM row. The
// private regions are excluded: shared rows are re-read by many threads, so
// a flip there exercises the full detection surface. Ties break on the
// first coordinate reached, which is deterministic because the replay is.
func hotSharedRow(spec Spec, amap *topology.AddrMap) (int, topology.DRAMCoord, error) {
	probe, err := NewGenerator(spec)
	if err != nil {
		return 0, topology.DRAMCoord{}, err
	}
	type hot struct {
		socket int
		co     topology.DRAMCoord
	}
	counts := make(map[hot]int)
	var best hot
	bestN := 0
	for i := 0; i < probeOpsPerThread; i++ {
		for t := 0; t < spec.Threads; t++ {
			op := probe.Next(t)
			if op.Kind == Barrier || uint64(op.Addr) >= privBase {
				continue
			}
			k := hot{amap.HomeSocket(op.Addr), amap.Decode(op.Addr)}
			// Keep both aggressor neighbours encodable: row 0/1 victims
			// would lose their lower aggressor.
			if k.co.Row < 2 {
				continue
			}
			counts[k]++
			if counts[k] > bestN {
				bestN = counts[k]
				best = k
			}
		}
	}
	if bestN == 0 {
		return 0, topology.DRAMCoord{}, fmt.Errorf("hammer: victim %q touches no shared rows in its probe prefix", spec.Name)
	}
	return best.socket, best.co, nil
}

// NewHammerSource builds the aggressor ladder for the machine configuration
// and wraps the victim generator.
func NewHammerSource(hs HammerSpec, cfg *topology.Config) (*HammerSource, error) {
	if hs.Intensity < 0 || hs.Intensity >= 1 {
		return nil, fmt.Errorf("hammer: intensity %v outside [0, 1)", hs.Intensity)
	}
	gen, err := NewGenerator(hs.Victim)
	if err != nil {
		return nil, err
	}
	h := &HammerSource{victim: gen, intensity: hs.Intensity}
	for t := 0; t < hs.Victim.Threads; t++ {
		h.rngs = append(h.rngs, rand.New(rand.NewSource(hs.Seed+int64(t)*15485863)))
	}
	if hs.Intensity == 0 {
		return h, nil
	}

	amap := topology.NewAddrMap(cfg)
	// Global byte distance between row r and row r+1 of the same bank and
	// channel: one row buffer per bank and channel, expanded by the socket
	// page interleave.
	rowStride := uint64(cfg.RowBufferBytes * cfg.BanksPerRank * cfg.ChannelsPerSkt * cfg.Sockets)
	setStride := uint64(cfg.LLCSizeBytes / cfg.LLCWays) // bytes between same-LLC-set lines
	if setStride%rowStride != 0 {
		return nil, fmt.Errorf("hammer: LLC set stride %d not a multiple of the row stride %d", setStride, rowStride)
	}
	rowHop := setStride / rowStride // rows between consecutive rungs of a group
	rungs := cfg.LLCWays + 1        // one more line than a set has ways
	nGroups := uint64(cfg.CoresPerSocket)
	// Group base rows must occupy distinct residues modulo the rung hop or
	// groups alias into each other's LLC sets and rows. Single-sided bases
	// (v+1 .. v+n) tolerate n = rowHop; the double-sided bracket
	// (v±1, v±2, ...) collides at offset ±rowHop/2, so it caps one lower.
	maxGroups := rowHop
	if hs.DoubleSided {
		maxGroups = rowHop - 1
	}
	if nGroups > maxGroups {
		nGroups = maxGroups
	}
	if nGroups == 0 {
		return nil, fmt.Errorf("hammer: row hop %d leaves no room for aggressor groups", rowHop)
	}

	socket, hotCo, err := hotSharedRow(hs.Victim, amap)
	if err != nil {
		return nil, err
	}
	h.hotSocket, h.hotRow = socket, hotCo

	rowsPerBank := uint64(cfg.MemPerSocketGiB) << 30 /
		uint64(cfg.RowBufferBytes*cfg.BanksPerRank*cfg.ChannelsPerSkt)
	if hotCo.Row+1+nGroups+uint64(rungs)*rowHop >= rowsPerBank {
		return nil, fmt.Errorf("hammer: ladder from row %d overruns the %d rows of a bank", hotCo.Row, rowsPerBank)
	}
	if hs.DoubleSided && hotCo.Row < nGroups+1 {
		// Not enough rows below the hot row for the lower bracket; hammer
		// from above only.
		hs.DoubleSided = false
	}

	// Group g's base aggressor row. Single-sided: rows v+1 .. v+nGroups,
	// a many-sided blast just above the hot victim row v (group 0's lower
	// victim row is exactly v). Double-sided: groups alternate sides so the
	// hot row is bracketed from both neighbours (groups 0 and 1 hammer v+1
	// and v-1; v sits between them).
	baseRow := func(g uint64) uint64 {
		if !hs.DoubleSided {
			return hotCo.Row + 1 + g
		}
		if g%2 == 0 {
			return hotCo.Row + 1 + g/2
		}
		return hotCo.Row - 1 - g/2
	}
	for g := uint64(0); g < nGroups; g++ {
		var grp []topology.Addr
		for k := 0; k < rungs; k++ {
			co := topology.DRAMCoord{Channel: hotCo.Channel, Bank: hotCo.Bank, Row: baseRow(g) + uint64(k)*rowHop}
			grp = append(grp, amap.Encode(socket, co, 0))
		}
		h.groups = append(h.groups, grp)
		h.ladder = append(h.ladder, grp...)
	}
	// Stagger same-group walkers on different sockets so they do not march
	// in phase (in the unreplicated machine both stream to one home
	// controller, where lockstep walkers would coalesce).
	for t := 0; t < hs.Victim.Threads; t++ {
		h.cursor = append(h.cursor, (t/int(nGroups)*7)%rungs)
	}
	// Sanity: the whole ladder must share one (channel, bank), with no row
	// repeated, or the activation guarantee (every access opens a new row)
	// breaks.
	first := amap.Decode(h.ladder[0])
	rows := make(map[uint64]bool, len(h.ladder))
	for _, a := range h.ladder {
		co := amap.Decode(a)
		if co.Channel != first.Channel || co.Bank != first.Bank {
			return nil, fmt.Errorf("hammer: ladder spans (ch %d, bank %d) and (ch %d, bank %d)",
				first.Channel, first.Bank, co.Channel, co.Bank)
		}
		if rows[co.Row] {
			return nil, fmt.Errorf("hammer: aggressor row %d appears twice", co.Row)
		}
		rows[co.Row] = true
	}
	return h, nil
}

// Next returns thread tid's next operation: an aggressor read with
// probability Intensity, otherwise the victim's next op. The aggressor draw
// uses its own per-thread RNG, so the victim substream is byte-identical to
// an unattacked run of the same spec. The thread walks its own group's
// eviction set cyclically (see the package comment for why groups are
// per-core).
func (h *HammerSource) Next(tid int) Op {
	if h.intensity > 0 && h.rngs[tid].Float64() < h.intensity {
		grp := h.groups[tid%len(h.groups)]
		a := grp[h.cursor[tid]]
		h.cursor[tid] = (h.cursor[tid] + 1) % len(grp)
		return Op{Kind: Read, Addr: a}
	}
	return h.victim.Next(tid)
}

// Ladder exposes the aggressor addresses (tests and campaign reports).
func (h *HammerSource) Ladder() []topology.Addr { return h.ladder }

// Groups exposes the per-core eviction sets; group g is walked by threads
// with tid%len(groups) == g.
func (h *HammerSource) Groups() [][]topology.Addr { return h.groups }

// VictimRow returns the home socket and DRAM coordinate of the targeted hot
// victim row (zero values when the aggressor is disarmed).
func (h *HammerSource) VictimRow() (int, topology.DRAMCoord) { return h.hotSocket, h.hotRow }

// Victim returns the wrapped victim generator's spec.
func (h *HammerSource) Victim() Spec { return h.victim.Spec() }
