package workload

// Suite returns the 20 Table III benchmarks. Parameters are set from the
// paper's Fig 7 characterisation: the ten benchmarks the paper reports as
// deny-winners (backprop, graph500, fft, stencil, xsbench, ocean_cp, nw,
// rsbench, bfs, streamcluster) are read-mostly with large shared read-only
// working sets; the other ten exhibit the "considerable private read/write
// behavior (greater than 46%)" that favors the allow protocol.
func Suite(threads int) []Spec {
	mk := func(name string, fp int, priv, ro, privW, rwW, loc, reuse, zipf, stride float64, comp int) Spec {
		return Spec{
			Name: name, Threads: threads, FootprintMB: fp,
			PrivFrac: priv, SharedROFrac: ro,
			PrivWriteFrac: privW, RWWriteFrac: rwW,
			Locality: loc, Reuse: reuse, ZipfFrac: zipf, StrideFrac: stride, ComputePerOp: comp,
			BarrierEvery: 50_000,
			Seed:         hashSeed(name),
		}
	}
	return []Spec{
		// HPC (assorted) — Monte Carlo cross-section lookups and graph
		// traversals: huge shared read-only tables, near-random access.
		mk("backprop", 64, 0.24, 0.70, 0.08, 0.20, 0.25, 0.30, 0.55, 0.20, 1),
		mk("graph500", 80, 0.18, 0.76, 0.05, 0.20, 0.10, 0.50, 0.60, 0.05, 3),
		mk("xsbench", 96, 0.14, 0.81, 0.04, 0.15, 0.05, 0.55, 0.60, 0.05, 4),
		mk("rsbench", 64, 0.22, 0.72, 0.04, 0.15, 0.10, 0.65, 0.55, 0.10, 6),
		mk("comd", 32, 0.62, 0.30, 0.52, 0.30, 0.55, 0.75, 0.30, 0.10, 4),

		// PARSEC.
		mk("canneal", 96, 0.60, 0.32, 0.55, 0.40, 0.08, 0.60, 0.50, 0.05, 3),
		mk("freqmine", 32, 0.58, 0.34, 0.48, 0.30, 0.35, 0.85, 0.40, 0.05, 5),
		mk("streamcluster", 56, 0.26, 0.66, 0.12, 0.25, 0.55, 0.70, 0.35, 0.20, 4),

		// SPLASH-2x.
		mk("barnes", 24, 0.55, 0.33, 0.48, 0.35, 0.25, 0.85, 0.40, 0.05, 5),
		mk("fft", 64, 0.34, 0.58, 0.28, 0.25, 0.70, 0.60, 0.15, 0.50, 3),
		mk("ocean_cp", 56, 0.34, 0.58, 0.30, 0.25, 0.75, 0.65, 0.10, 0.35, 3),

		// Rodinia.
		mk("bfs", 56, 0.22, 0.71, 0.08, 0.20, 0.15, 0.70, 0.50, 0.05, 4),
		mk("nw", 40, 0.30, 0.62, 0.20, 0.25, 0.70, 0.72, 0.15, 0.30, 3),

		// NAS PB.
		mk("mg", 64, 0.62, 0.30, 0.58, 0.25, 0.75, 0.60, 0.15, 0.25, 3),
		mk("bt", 48, 0.64, 0.28, 0.54, 0.25, 0.72, 0.70, 0.15, 0.20, 4),
		mk("sp", 48, 0.64, 0.28, 0.54, 0.25, 0.72, 0.68, 0.15, 0.20, 4),
		mk("lu", 32, 0.64, 0.28, 0.55, 0.25, 0.70, 0.85, 0.20, 0.25, 5),

		// Parboil.
		mk("stencil", 64, 0.30, 0.62, 0.26, 0.25, 0.80, 0.55, 0.10, 0.35, 2),
		mk("histo", 32, 0.50, 0.40, 0.58, 0.40, 0.25, 0.80, 0.45, 0.05, 4),

		// SPEC 2017.
		mk("lbm", 48, 0.66, 0.26, 0.50, 0.25, 0.82, 0.55, 0.05, 0.10, 3),
	}
}

// DenyWinners is the set of benchmarks the paper reports as performing
// better under the deny-based protocol (Section VII).
var DenyWinners = map[string]bool{
	"backprop": true, "graph500": true, "fft": true, "stencil": true,
	"xsbench": true, "ocean_cp": true, "nw": true, "rsbench": true,
	"bfs": true, "streamcluster": true,
}

// ByName returns the suite spec with the given name, or false.
func ByName(name string, threads int) (Spec, bool) {
	for _, s := range Suite(threads) {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// hashSeed derives a stable per-benchmark seed from its name (FNV-1a).
func hashSeed(name string) int64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return int64(h & 0x7fffffffffffffff)
}
