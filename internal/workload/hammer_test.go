package workload

import (
	"testing"

	"dve/internal/topology"
)

func hammerSpec(t *testing.T, intensity float64, double bool) HammerSpec {
	t.Helper()
	victim, ok := ByName("fft", 4)
	if !ok {
		t.Fatal("fft not found")
	}
	return HammerSpec{Victim: victim, Intensity: intensity, DoubleSided: double, Seed: 99}
}

func TestHammerLadderGeometry(t *testing.T) {
	for _, proto := range []topology.Protocol{topology.ProtoBaseline, topology.ProtoDeny} {
		cfg := topology.Default(proto)
		h, err := NewHammerSource(hammerSpec(t, 0.5, false), &cfg)
		if err != nil {
			t.Fatalf("%v: %v", proto, err)
		}
		groups := h.Groups()
		if len(groups) == 0 || len(groups) > cfg.CoresPerSocket {
			t.Fatalf("%v: %d groups, want 1..%d", proto, len(groups), cfg.CoresPerSocket)
		}
		if want := len(groups) * (cfg.LLCWays + 1); len(h.Ladder()) != want {
			t.Fatalf("%v: ladder has %d rungs, want %d", proto, len(h.Ladder()), want)
		}
		amap := topology.NewAddrMap(&cfg)
		llcSets := uint64(cfg.LLCSizeBytes / cfg.LLCWays / cfg.LineSizeBytes)
		first := amap.Decode(h.Ladder()[0])
		rows := map[uint64]bool{}
		seenSets := map[uint64]bool{}
		for g, grp := range groups {
			// Each group is one eviction set: LLCWays+1 lines, all in one LLC
			// set, and every group in a different set.
			if want := cfg.LLCWays + 1; len(grp) != want {
				t.Fatalf("%v: group %d has %d rungs, want %d", proto, g, len(grp), want)
			}
			grpSet := uint64(grp[0]) / uint64(cfg.LineSizeBytes) % llcSets
			if seenSets[grpSet] {
				t.Fatalf("%v: group %d reuses LLC set %d", proto, g, grpSet)
			}
			seenSets[grpSet] = true
			for _, a := range grp {
				co := amap.Decode(a)
				if co.Channel != first.Channel || co.Bank != first.Bank {
					t.Fatalf("%v: rung (ch %d bank %d), want (ch %d bank %d)",
						proto, co.Channel, co.Bank, first.Channel, first.Bank)
				}
				if rows[co.Row] {
					t.Fatalf("%v: duplicate row %d in ladder", proto, co.Row)
				}
				rows[co.Row] = true
				if s := uint64(a) / uint64(cfg.LineSizeBytes) % llcSets; s != grpSet {
					t.Fatalf("%v: group %d rung in LLC set %d, want %d (eviction set broken)", proto, g, s, grpSet)
				}
			}
		}
	}
}

func TestHammerDoubleSidedPairsRows(t *testing.T) {
	cfg := topology.Default(topology.ProtoDeny)
	h, err := NewHammerSource(hammerSpec(t, 0.5, true), &cfg)
	if err != nil {
		t.Fatal(err)
	}
	groups := h.Groups()
	if len(groups) < 2 {
		t.Fatalf("double-sided hammer built %d groups, want at least one per side", len(groups))
	}
	amap := topology.NewAddrMap(&cfg)
	_, hot := h.VictimRow()
	// Even groups hammer from above the hot row, odd groups from below: the
	// victim row is bracketed (groups 0 and 1 are its immediate neighbours).
	for g, grp := range groups {
		base := amap.Decode(grp[0])
		if g%2 == 0 {
			if base.Row <= hot.Row {
				t.Fatalf("even group %d base row %d not above hot row %d", g, base.Row, hot.Row)
			}
		} else if base.Row >= hot.Row {
			t.Fatalf("odd group %d base row %d not below hot row %d", g, base.Row, hot.Row)
		}
	}
	lo := amap.Decode(groups[1][0])
	hi := amap.Decode(groups[0][0])
	if lo.Row != hot.Row-1 || hi.Row != hot.Row+1 {
		t.Fatalf("bracket rows %d,%d do not sandwich hot row %d", lo.Row, hi.Row, hot.Row)
	}
}

func TestHammerZeroIntensityMatchesVictim(t *testing.T) {
	cfg := topology.Default(topology.ProtoDeny)
	hs := hammerSpec(t, 0, false)
	h, err := NewHammerSource(hs, &cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGenerator(hs.Victim)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		for tid := 0; tid < hs.Victim.Threads; tid++ {
			a, b := h.Next(tid), g.Next(tid)
			if a != b {
				t.Fatalf("intensity-0 stream diverges from victim at op %d tid %d: %+v vs %+v", i, tid, a, b)
			}
		}
	}
}

func TestHammerDeterminism(t *testing.T) {
	cfg := topology.Default(topology.ProtoDeny)
	hs := hammerSpec(t, 0.4, true)
	h1, _ := NewHammerSource(hs, &cfg)
	h2, _ := NewHammerSource(hs, &cfg)
	if h1 == nil || h2 == nil {
		t.Fatal("source construction failed")
	}
	for i := 0; i < 5000; i++ {
		for tid := 0; tid < hs.Victim.Threads; tid++ {
			if a, b := h1.Next(tid), h2.Next(tid); a != b {
				t.Fatalf("streams diverge at op %d tid %d", i, tid)
			}
		}
	}
}

func TestHammerIntensityMix(t *testing.T) {
	cfg := topology.Default(topology.ProtoDeny)
	h, err := NewHammerSource(hammerSpec(t, 0.4, false), &cfg)
	if err != nil {
		t.Fatal(err)
	}
	onLadder := map[topology.Addr]bool{}
	for _, a := range h.Ladder() {
		onLadder[a] = true
	}
	const n = 50_000
	agg := 0
	for i := 0; i < n; i++ {
		if op := h.Next(0); onLadder[op.Addr] && op.Kind == Read && op.Compute == 0 {
			agg++
		}
	}
	if f := float64(agg) / n; f < 0.37 || f > 0.43 {
		t.Fatalf("aggressor fraction %.3f, want ~0.40", f)
	}
}

func TestHammerRejectsBadSpecs(t *testing.T) {
	cfg := topology.Default(topology.ProtoDeny)
	for _, bad := range []float64{1.0, 1.5, -0.1} {
		hs := hammerSpec(t, bad, false)
		if _, err := NewHammerSource(hs, &cfg); err == nil {
			t.Errorf("intensity %v accepted", bad)
		}
	}
}

// TestHammerTargetsHotVictimRow pins the placement contract: the first
// rung(s) bracket the victim's hottest shared row, so the hammered victim
// row provably holds data the workload touches early and re-reads.
func TestHammerTargetsHotVictimRow(t *testing.T) {
	cfg := topology.Default(topology.ProtoDeny)
	amap := topology.NewAddrMap(&cfg)

	single, err := NewHammerSource(hammerSpec(t, 0.5, false), &cfg)
	if err != nil {
		t.Fatal(err)
	}
	socket, hot := single.VictimRow()
	if hot.Row < 2 {
		t.Fatalf("hot victim row %d leaves no room for the lower aggressor", hot.Row)
	}
	rung0 := amap.Decode(single.Ladder()[0])
	if rung0.Row != hot.Row+1 || rung0.Bank != hot.Bank || rung0.Channel != hot.Channel {
		t.Fatalf("single-sided rung0 %+v does not neighbour hot row %+v", rung0, hot)
	}
	if got := amap.HomeSocket(single.Ladder()[0]); got != socket {
		t.Fatalf("ladder homed on socket %d, hot row on socket %d", got, socket)
	}

	// The hot row must actually be touched by the victim's own stream
	// prefix (that is what makes the flips observable).
	g, err := NewGenerator(single.Victim())
	if err != nil {
		t.Fatal(err)
	}
	touched := false
	for i := 0; i < 256 && !touched; i++ {
		for tid := 0; tid < single.Victim().Threads; tid++ {
			op := g.Next(tid)
			if op.Kind == Barrier {
				continue
			}
			if amap.HomeSocket(op.Addr) == socket && amap.Decode(op.Addr) == hot {
				touched = true
				break
			}
		}
	}
	if !touched {
		t.Fatal("victim stream prefix never touches the chosen hot row")
	}

	double, err := NewHammerSource(hammerSpec(t, 0.5, true), &cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, dhot := double.VictimRow()
	hi := amap.Decode(double.Groups()[0][0])
	lo := amap.Decode(double.Groups()[1][0])
	if lo.Row != dhot.Row-1 || hi.Row != dhot.Row+1 {
		t.Fatalf("double-sided base rows %d,%d do not bracket hot row %d", lo.Row, hi.Row, dhot.Row)
	}
}
