// Package topology describes the simulated machine: the Table II system
// configuration, physical address geometry, page interleaving across sockets,
// and the fixed-function replica address mapping from Section III of the
// paper.
package topology

import "fmt"

// Protocol selects the Dvé replica-directory protocol family (Section V-C).
type Protocol int

const (
	// ProtoBaseline is the plain NUMA system without replication.
	ProtoBaseline Protocol = iota
	// ProtoAllow is the allow-based (lazy pull) replica protocol.
	ProtoAllow
	// ProtoDeny is the deny-based (eager push) replica protocol.
	ProtoDeny
	// ProtoDynamic samples allow and deny each epoch and applies the winner.
	ProtoDynamic
	// ProtoIntelMirror is the improved Intel-mirroring++ baseline: replicas on
	// a second channel of the same socket with load-balanced reads.
	ProtoIntelMirror
)

// String returns the short name used in reports.
func (p Protocol) String() string {
	switch p {
	case ProtoBaseline:
		return "baseline"
	case ProtoAllow:
		return "allow"
	case ProtoDeny:
		return "deny"
	case ProtoDynamic:
		return "dynamic"
	case ProtoIntelMirror:
		return "intel-mirror++"
	}
	return "unknown"
}

// ParseProtocol maps a report name (as produced by Protocol.String) back to
// its Protocol, for CLIs and the sweep service.
func ParseProtocol(s string) (Protocol, error) {
	for _, p := range []Protocol{
		ProtoBaseline, ProtoAllow, ProtoDeny, ProtoDynamic, ProtoIntelMirror,
	} {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("topology: unknown protocol %q", s)
}

// Config captures the simulated system parameters (paper Table II).
type Config struct {
	Sockets        int // 2
	CoresPerSocket int // 8
	ClockGHz       float64

	// L1 per-core private cache.
	L1SizeBytes   int
	L1Ways        int
	L1LatencyCyc  int
	LineSizeBytes int

	// LLC (L2) shared per socket, inclusive, embeds the local directory.
	LLCSizeBytes  int
	LLCWays       int
	LLCLatencyCyc int

	// Global directory access latency (cycles).
	DirLatencyCyc int

	// DRAM timing in nanoseconds (DDR4-2400 per Table II).
	TCLns  float64
	TRCDns float64
	TRPns  float64
	TRASns float64

	RowBufferBytes  int
	BanksPerRank    int
	ChannelsPerSkt  int // 1 baseline, 2 with replication capacity added
	MemPerSocketGiB int

	// Mesh: per-hop latency in cycles; 2x4 mesh per socket.
	MeshRows, MeshCols int
	MeshHopCyc         int

	// Inter-socket point-to-point link latency, one way, in nanoseconds.
	InterSocketNs float64

	// PageBytes is the OS page size used for socket interleaving and the
	// fixed-function replica mapping.
	PageBytes int

	Protocol Protocol

	// Replica directory configuration (Section VI "Protocol Config").
	ReplicaDirEntries int  // fully associative; 2048 default
	SpeculativeReads  bool // speculative replica access optimization
	CoarseGrain       bool // region-granularity replica directory (Fig 9)
	RegionBytes       int  // region size when CoarseGrain
	Oracular          bool // infinite, zero-insert-latency replica directory

	// Dynamic protocol sampling (Section V-C5).
	SampleOps uint64 // profile phase length per scheme, in ops
	EpochOps  uint64 // total epoch length in ops

	// FootprintHintLines is the expected number of distinct cache lines the
	// run will touch (derived from the workload footprint). It only pre-sizes
	// directory and row-hammer tracking structures — capacity hints never
	// change simulated behaviour. 0 means no hint.
	FootprintHintLines int

	// RowHammerThreshold overrides the per-row activation count within one
	// refresh window at which the memory controller flags the row as
	// hammered (0 = the package mem default). Adversarial campaigns lower
	// it so threshold crossings are reachable at simulation op counts.
	RowHammerThreshold uint32
}

// Default returns the Table II configuration with the given protocol.
func Default(p Protocol) Config {
	c := Config{
		Sockets:        2,
		CoresPerSocket: 8,
		ClockGHz:       3.0,

		L1SizeBytes:   64 << 10,
		L1Ways:        8,
		L1LatencyCyc:  1,
		LineSizeBytes: 64,

		LLCSizeBytes:  8 << 20,
		LLCWays:       16,
		LLCLatencyCyc: 20,

		DirLatencyCyc: 20,

		TCLns:  14.16,
		TRCDns: 14.16,
		TRPns:  14.16,
		TRASns: 32,

		RowBufferBytes:  1 << 10,
		BanksPerRank:    16,
		ChannelsPerSkt:  1,
		MemPerSocketGiB: 8,

		MeshRows:   2,
		MeshCols:   4,
		MeshHopCyc: 1,

		InterSocketNs: 50,

		PageBytes: 4 << 10,

		Protocol: p,

		ReplicaDirEntries: 2048,
		SpeculativeReads:  true,
		RegionBytes:       4 << 10,

		// SampleOps/EpochOps of 0 auto-scale to the run length (the paper
		// profiles 100M instructions per scheme every 1B instructions).
		SampleOps: 0,
		EpochOps:  0,
	}
	if p != ProtoBaseline {
		// Replicated memory: DIMMs added on another channel on both nodes
		// (Section VI "Memory Configuration").
		c.ChannelsPerSkt = 2
	}
	return c
}

// Cycles converts nanoseconds to clock cycles, rounding to nearest.
func (c *Config) Cycles(ns float64) int {
	return int(ns*c.ClockGHz + 0.5)
}

// InterSocketCyc returns the one-way socket link latency in cycles.
func (c *Config) InterSocketCyc() int { return c.Cycles(c.InterSocketNs) }

// TotalCores returns the core count across all sockets.
func (c *Config) TotalCores() int { return c.Sockets * c.CoresPerSocket }

// Replicated reports whether the configuration maintains cross-socket
// replicas via coherent replication.
func (c *Config) Replicated() bool {
	switch c.Protocol {
	case ProtoAllow, ProtoDeny, ProtoDynamic:
		return true
	case ProtoBaseline, ProtoIntelMirror:
		// Baseline keeps a single copy; Intel mirroring duplicates writes
		// in hardware but maintains no coherent replica directory.
		return false
	}
	return false
}
