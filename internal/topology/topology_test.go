package topology

import (
	"testing"
	"testing/quick"
)

func TestDefaultConfigTableII(t *testing.T) {
	c := Default(ProtoBaseline)
	if c.TotalCores() != 16 {
		t.Errorf("TotalCores = %d, want 16", c.TotalCores())
	}
	if c.ChannelsPerSkt != 1 {
		t.Errorf("baseline channels = %d, want 1", c.ChannelsPerSkt)
	}
	d := Default(ProtoDeny)
	if d.ChannelsPerSkt != 2 {
		t.Errorf("replicated channels = %d, want 2", d.ChannelsPerSkt)
	}
	if got := c.InterSocketCyc(); got != 150 {
		t.Errorf("50ns at 3GHz = %d cycles, want 150", got)
	}
	if c.Cycles(14.16) != 42 {
		t.Errorf("tCL cycles = %d, want 42", c.Cycles(14.16))
	}
}

func TestReplicated(t *testing.T) {
	for _, tc := range []struct {
		p    Protocol
		want bool
	}{
		{ProtoBaseline, false},
		{ProtoAllow, true},
		{ProtoDeny, true},
		{ProtoDynamic, true},
		{ProtoIntelMirror, false},
	} {
		c := Default(tc.p)
		if c.Replicated() != tc.want {
			t.Errorf("Replicated(%v) = %v, want %v", tc.p, c.Replicated(), tc.want)
		}
	}
}

func TestHomeSocketInterleave(t *testing.T) {
	c := Default(ProtoBaseline)
	m := NewAddrMap(&c)
	page := uint64(c.PageBytes)
	if m.HomeSocket(0) != 0 || m.HomeSocket(Addr(page)) != 1 || m.HomeSocket(Addr(2*page)) != 0 {
		t.Fatal("pages do not interleave round-robin across sockets")
	}
	if m.ReplicaSocket(0) != 1 || m.ReplicaSocket(Addr(page)) != 0 {
		t.Fatal("replica socket is not the opposite socket")
	}
}

// The fixed-function mapping must be an involution (applying it twice returns
// the original page) and must always land on the opposite socket — the paper's
// f(p) = p + 1 - 2S pairs adjacent interleaved pages.
func TestReplicaMappingProperties(t *testing.T) {
	c := Default(ProtoAllow)
	m := NewAddrMap(&c)
	f := func(page uint32) bool {
		p := uint64(page)
		r := m.ReplicaPage(p)
		if m.ReplicaPage(r) != p {
			return false // not an involution
		}
		return r%2 != p%2 // opposite socket
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReplicaAddrPreservesOffset(t *testing.T) {
	c := Default(ProtoAllow)
	m := NewAddrMap(&c)
	a := Addr(3*uint64(c.PageBytes) + 137)
	r := m.ReplicaAddr(a)
	if uint64(r)%uint64(c.PageBytes) != 137 {
		t.Fatalf("replica offset = %d, want 137", uint64(r)%uint64(c.PageBytes))
	}
	if m.HomeSocket(r) == m.HomeSocket(a) {
		t.Fatal("replica address on same socket as home")
	}
	if m.ReplicaAddr(r) != a {
		t.Fatal("ReplicaAddr is not an involution")
	}
}

// Replica mapping preserves the DRAM-internal coordinates exactly (same
// channel/bank/row on the other socket), per footnote 3: the mapping
// "retains the same DRAM internal mapping".
func TestReplicaPreservesDRAMCoord(t *testing.T) {
	c := Default(ProtoAllow)
	m := NewAddrMap(&c)
	f := func(page uint16, off uint16) bool {
		a := Addr(uint64(page)*uint64(c.PageBytes) + uint64(off)%uint64(c.PageBytes))
		r := m.ReplicaAddr(a)
		return m.Decode(a) == m.Decode(r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// The page interleave must not alias with the bank stripe: a socket's
// address stream has to reach every bank (the bug this test pinned down:
// socket-0 pages only ever touched half the banks).
func TestSocketStreamCoversAllBanks(t *testing.T) {
	for _, p := range []Protocol{ProtoBaseline, ProtoDeny} {
		c := Default(p)
		m := NewAddrMap(&c)
		seen := map[int]bool{}
		for a := Addr(0); a < Addr(1<<22); a += Addr(c.PageBytes) {
			if m.HomeSocket(a) != 0 {
				continue
			}
			for off := 0; off < c.PageBytes; off += c.LineSizeBytes {
				seen[m.Decode(a+Addr(off)).Bank] = true
			}
		}
		if len(seen) != c.BanksPerRank {
			t.Errorf("%v: socket-0 stream reaches %d/%d banks", p, len(seen), c.BanksPerRank)
		}
	}
}

func TestLineOf(t *testing.T) {
	c := Default(ProtoBaseline)
	m := NewAddrMap(&c)
	if m.LineOf(Addr(130)) != Line(128) {
		t.Fatalf("LineOf(130) = %d, want 128", m.LineOf(Addr(130)))
	}
	if m.LineOf(Addr(64)) != Line(64) {
		t.Fatalf("LineOf(64) = %d, want 64", m.LineOf(Addr(64)))
	}
}

func TestDecodeRanges(t *testing.T) {
	c := Default(ProtoDeny) // 2 channels
	m := NewAddrMap(&c)
	seenCh := map[int]bool{}
	seenBank := map[int]bool{}
	for a := Addr(0); a < Addr(1<<22); a += Addr(c.LineSizeBytes) {
		d := m.Decode(a)
		if d.Channel < 0 || d.Channel >= c.ChannelsPerSkt {
			t.Fatalf("channel %d out of range", d.Channel)
		}
		if d.Bank < 0 || d.Bank >= c.BanksPerRank {
			t.Fatalf("bank %d out of range", d.Bank)
		}
		seenCh[d.Channel] = true
		seenBank[d.Bank] = true
	}
	if len(seenCh) != c.ChannelsPerSkt {
		t.Errorf("only %d channels used, want %d", len(seenCh), c.ChannelsPerSkt)
	}
	if len(seenBank) != c.BanksPerRank {
		t.Errorf("only %d banks used, want %d", len(seenBank), c.BanksPerRank)
	}
}

func TestProtocolString(t *testing.T) {
	names := map[Protocol]string{
		ProtoBaseline:    "baseline",
		ProtoAllow:       "allow",
		ProtoDeny:        "deny",
		ProtoDynamic:     "dynamic",
		ProtoIntelMirror: "intel-mirror++",
		Protocol(99):     "unknown",
	}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), want)
		}
	}
}
