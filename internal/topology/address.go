package topology

// Addr is a physical byte address.
type Addr uint64

// Line is a cache-line-aligned address (Addr with the low line-offset bits
// cleared). All coherence structures key on Line.
type Line uint64

// AddrMap decodes physical addresses into machine coordinates: socket,
// channel, bank, and DRAM row. Pages are interleaved round-robin across
// sockets ("memory is allocated using an interleave policy whereby adjacent
// pages are interleaved across memory controllers", Section VI).
type AddrMap struct {
	cfg *Config
}

// NewAddrMap builds an address map for the configuration.
func NewAddrMap(cfg *Config) *AddrMap { return &AddrMap{cfg: cfg} }

// LineOf returns the cache line containing a.
func (m *AddrMap) LineOf(a Addr) Line {
	return Line(uint64(a) &^ uint64(m.cfg.LineSizeBytes-1))
}

// PageOf returns the page number containing a.
func (m *AddrMap) PageOf(a Addr) uint64 {
	return uint64(a) / uint64(m.cfg.PageBytes)
}

// HomeSocket returns the socket whose memory controller owns the address:
// consecutive physical pages interleave between sockets.
func (m *AddrMap) HomeSocket(a Addr) int {
	return int(m.PageOf(a) % uint64(m.cfg.Sockets))
}

// HomeSocketLine is HomeSocket for a line address.
func (m *AddrMap) HomeSocketLine(l Line) int { return m.HomeSocket(Addr(l)) }

// ReplicaSocket returns the socket holding the replica for an address. With
// two sockets the replica lives on the other socket.
func (m *AddrMap) ReplicaSocket(a Addr) int {
	return (m.HomeSocket(a) + 1) % m.cfg.Sockets
}

// ReplicaPage implements the paper's fixed-function mapping
// f(p) = p/L + 1 - 2*S (Section III, footnote 3): consecutive physical pages
// interleaved between sockets map to a replica page on the other socket while
// retaining the same DRAM-internal (bank, row) mapping. The input and output
// are page numbers.
func (m *AddrMap) ReplicaPage(page uint64) uint64 {
	s := page % uint64(m.cfg.Sockets) // socket of the home page
	// p + 1 - 2*S: even (socket-0) pages map one page up, odd (socket-1)
	// pages map one page down.
	return page + 1 - 2*s
}

// ReplicaAddr maps a physical address to its replica physical address under
// the fixed-function mapping.
func (m *AddrMap) ReplicaAddr(a Addr) Addr {
	page := m.PageOf(a)
	off := uint64(a) % uint64(m.cfg.PageBytes)
	return Addr(m.ReplicaPage(page)*uint64(m.cfg.PageBytes) + off)
}

// ReplicaLine maps a line address to its replica line address.
func (m *AddrMap) ReplicaLine(l Line) Line {
	return Line(m.ReplicaAddr(Addr(l)))
}

// DRAMCoord locates an address within one socket's DRAM.
type DRAMCoord struct {
	Channel int
	Bank    int
	Row     uint64
}

// AdjacentRows returns the DRAM coordinates physically adjacent to co in
// its bank — the row-hammer victim rows (Row-1 and Row+1 on the same
// channel and bank). Row 0 has a single neighbour.
func AdjacentRows(co DRAMCoord) []DRAMCoord {
	out := make([]DRAMCoord, 0, 2)
	if co.Row > 0 {
		out = append(out, DRAMCoord{Channel: co.Channel, Bank: co.Bank, Row: co.Row - 1})
	}
	out = append(out, DRAMCoord{Channel: co.Channel, Bank: co.Bank, Row: co.Row + 1})
	return out
}

// RowLines returns the number of cache lines a DRAM row buffer holds.
func (m *AddrMap) RowLines() int {
	return m.cfg.RowBufferBytes / m.cfg.LineSizeBytes
}

// Decode maps an address to its DRAM coordinates within its home socket.
// The socket selection bit (page interleaving) is stripped first so that
// each socket's DRAM uses its full channel/bank space — otherwise the
// interleave aliases with the bank stripe and half the banks go unused.
// The socket-local stream is then striped across channels at line
// granularity and across banks at row-buffer granularity, giving channel-
// and bank-level parallelism for streaming accesses. Because the
// fixed-function replica map pairs page 2k with page 2k+1, an address and
// its replica decode to identical coordinates on their respective sockets
// (footnote 3: the mapping "retains the same DRAM internal mapping").
func (m *AddrMap) Decode(a Addr) DRAMCoord {
	c := m.cfg
	page := uint64(a) / uint64(c.PageBytes)
	local := page/uint64(c.Sockets)*uint64(c.PageBytes) + uint64(a)%uint64(c.PageBytes)
	line := local / uint64(c.LineSizeBytes)
	ch := 0
	if c.ChannelsPerSkt > 1 {
		ch = int(line % uint64(c.ChannelsPerSkt))
		line /= uint64(c.ChannelsPerSkt)
	}
	rowUnit := uint64(c.RowBufferBytes / c.LineSizeBytes)
	rowIdx := line / rowUnit
	bank := int(rowIdx % uint64(c.BanksPerRank))
	row := rowIdx / uint64(c.BanksPerRank)
	return DRAMCoord{Channel: ch, Bank: bank, Row: row}
}

// Encode is the inverse of Decode: it maps a socket, a DRAM coordinate and
// a line slot within the row buffer back to the (line-aligned) physical
// address of that cell. Row-hammer modeling uses it to turn a victim row
// (an adjacent row of a hammered coordinate) into concrete addresses whose
// reads then consult the fault model. For every address a,
// Encode(HomeSocket(a), Decode(a), slot) enumerates the lines sharing a's
// row, and Decode(Encode(s, co, i)) == co with HomeSocket == s.
func (m *AddrMap) Encode(socket int, co DRAMCoord, lineInRow int) Addr {
	c := m.cfg
	rowUnit := uint64(c.RowBufferBytes / c.LineSizeBytes)
	rowIdx := co.Row*uint64(c.BanksPerRank) + uint64(co.Bank)
	line := rowIdx*rowUnit + uint64(lineInRow)
	if c.ChannelsPerSkt > 1 {
		line = line*uint64(c.ChannelsPerSkt) + uint64(co.Channel)
	}
	local := line * uint64(c.LineSizeBytes)
	page := local / uint64(c.PageBytes)
	off := local % uint64(c.PageBytes)
	return Addr((page*uint64(c.Sockets)+uint64(socket))*uint64(c.PageBytes) + off)
}
