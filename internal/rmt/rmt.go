// Package rmt implements the Replica Map Table and the OS co-design of
// Sections III and V-D: a system-wide table mapping physical pages to
// replica pages on the opposite socket, an allocator that carves replica
// pages from each socket's free memory (the "idle memory" the paper
// exploits), and runtime enable/disable so reliability can be traded for
// capacity on demand. Pages without an RMT entry seamlessly fall back to a
// single copy.
package rmt

import (
	"fmt"

	"dve/internal/topology"
)

// Table is the system-wide replica map table (RMT). It is page-granular; a
// missing entry means the page is not replicated.
type Table struct {
	pageBytes uint64
	fwd       map[uint64]uint64 // page -> replica page
	rev       map[uint64]uint64 // replica page -> page

	Lookups, Hits uint64
}

// NewTable creates an empty RMT for the given page size.
func NewTable(pageBytes int) *Table {
	return &Table{
		pageBytes: uint64(pageBytes),
		fwd:       make(map[uint64]uint64),
		rev:       make(map[uint64]uint64),
	}
}

// Map installs a replica mapping. Both directions must be free.
func (t *Table) Map(page, replicaPage uint64) error {
	if _, ok := t.fwd[page]; ok {
		return fmt.Errorf("rmt: page %d already mapped", page)
	}
	if _, ok := t.rev[replicaPage]; ok {
		return fmt.Errorf("rmt: replica page %d already in use", replicaPage)
	}
	t.fwd[page] = replicaPage
	t.rev[replicaPage] = page
	return nil
}

// Unmap removes a page's replica mapping (reclaiming the replica page for
// addressable use). It reports whether a mapping existed.
func (t *Table) Unmap(page uint64) bool {
	rp, ok := t.fwd[page]
	if !ok {
		return false
	}
	delete(t.fwd, page)
	delete(t.rev, rp)
	return true
}

// Len returns the number of replicated pages.
func (t *Table) Len() int { return len(t.fwd) }

// ReplicaAddr translates an address to its replica address; ok=false means
// the page is not replicated (single-copy fallback).
func (t *Table) ReplicaAddr(a topology.Addr) (topology.Addr, bool) {
	t.Lookups++
	page := uint64(a) / t.pageBytes
	rp, ok := t.fwd[page]
	if !ok {
		return 0, false
	}
	t.Hits++
	return topology.Addr(rp*t.pageBytes + uint64(a)%t.pageBytes), true
}

// Allocator manages each socket's free page pool and builds replica pairs
// on opposite sockets, the way the OS memory allocator would use its
// knowledge of the memory topology (Section V-D).
type Allocator struct {
	cfg  *topology.Config
	amap *topology.AddrMap
	free [][]uint64 // per-socket free replica-candidate pages (LIFO)
}

// NewAllocator seeds the allocator with free pages per socket. Pages are
// identified by page number; their socket follows the interleave mapping.
func NewAllocator(cfg *topology.Config, freePages []uint64) *Allocator {
	a := &Allocator{
		cfg:  cfg,
		amap: topology.NewAddrMap(cfg),
		free: make([][]uint64, cfg.Sockets),
	}
	for _, p := range freePages {
		s := int(p % uint64(cfg.Sockets))
		a.free[s] = append(a.free[s], p)
	}
	return a
}

// FreePages returns the number of free pages on a socket.
func (a *Allocator) FreePages(socket int) int { return len(a.free[socket]) }

// Donate returns reclaimed pages to the free pool (e.g. after Unmap, or
// when a balloon driver carves more idle memory).
func (a *Allocator) Donate(pages []uint64) {
	for _, p := range pages {
		s := int(p % uint64(a.cfg.Sockets))
		a.free[s] = append(a.free[s], p)
	}
}

// AllocReplica picks a free page on the opposite socket of the given page,
// removing it from the pool. It fails when the opposite socket has no idle
// memory left (the capacity-vs-reliability trade at its limit).
func (a *Allocator) AllocReplica(page uint64) (uint64, error) {
	home := int(page % uint64(a.cfg.Sockets))
	other := (home + 1) % a.cfg.Sockets
	pool := a.free[other]
	if len(pool) == 0 {
		return 0, fmt.Errorf("rmt: no idle memory on socket %d for a replica of page %d", other, page)
	}
	rp := pool[len(pool)-1]
	a.free[other] = pool[:len(pool)-1]
	return rp, nil
}

// Manager ties the table and allocator together: the interface the OS (or
// the control plane, for per-VM / per-process policies) drives.
type Manager struct {
	Table *Table
	Alloc *Allocator
}

// NewManager builds a manager over the config with the given idle pages.
func NewManager(cfg *topology.Config, idlePages []uint64) *Manager {
	return &Manager{
		Table: NewTable(cfg.PageBytes),
		Alloc: NewAllocator(cfg, idlePages),
	}
}

// Replicate enables replication for a run of pages (e.g. a critical
// allocation, a VM, or a process's address space). It returns the number of
// pages actually replicated; it stops early when idle memory runs out.
func (m *Manager) Replicate(firstPage uint64, nPages int) (int, error) {
	done := 0
	for i := 0; i < nPages; i++ {
		p := firstPage + uint64(i)
		if _, ok := m.Table.fwd[p]; ok {
			done++ // already replicated
			continue
		}
		rp, err := m.Alloc.AllocReplica(p)
		if err != nil {
			return done, err
		}
		if err := m.Table.Map(p, rp); err != nil {
			m.Alloc.Donate([]uint64{rp})
			return done, err
		}
		done++
	}
	return done, nil
}

// Release disables replication for a run of pages, returning the replica
// pages to the free pool (memory "hot-plugged back to system visible
// capacity"). It returns how many pages were released.
func (m *Manager) Release(firstPage uint64, nPages int) int {
	done := 0
	for i := 0; i < nPages; i++ {
		p := firstPage + uint64(i)
		if rp, ok := m.Table.fwd[p]; ok {
			m.Table.Unmap(p)
			m.Alloc.Donate([]uint64{rp})
			done++
		}
	}
	return done
}
