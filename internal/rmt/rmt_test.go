package rmt

import (
	"testing"
	"testing/quick"

	"dve/internal/topology"
)

func cfg() topology.Config { return topology.Default(topology.ProtoDeny) }

func TestTableMapUnmap(t *testing.T) {
	c := cfg()
	tb := NewTable(c.PageBytes)
	if err := tb.Map(4, 7); err != nil {
		t.Fatal(err)
	}
	if err := tb.Map(4, 9); err == nil {
		t.Fatal("double map of page allowed")
	}
	if err := tb.Map(6, 7); err == nil {
		t.Fatal("replica page reused")
	}
	a := topology.Addr(4*uint64(c.PageBytes) + 100)
	ra, ok := tb.ReplicaAddr(a)
	if !ok || uint64(ra) != 7*uint64(c.PageBytes)+100 {
		t.Fatalf("ReplicaAddr = %v,%v", ra, ok)
	}
	if !tb.Unmap(4) {
		t.Fatal("Unmap missed mapping")
	}
	if tb.Unmap(4) {
		t.Fatal("Unmap of unmapped page reported true")
	}
	if _, ok := tb.ReplicaAddr(a); ok {
		t.Fatal("unmapped page still replicated")
	}
	if tb.Len() != 0 {
		t.Fatalf("Len = %d, want 0", tb.Len())
	}
}

func TestTableFallbackIsSilent(t *testing.T) {
	c := cfg()
	tb := NewTable(c.PageBytes)
	if _, ok := tb.ReplicaAddr(12345); ok {
		t.Fatal("unmapped address reported replicated")
	}
	if tb.Lookups != 1 || tb.Hits != 0 {
		t.Fatalf("lookup accounting: %d/%d", tb.Lookups, tb.Hits)
	}
}

func TestAllocatorOppositeSocket(t *testing.T) {
	c := cfg()
	// Pages 0,2,4 live on socket 0; 1,3,5 on socket 1.
	a := NewAllocator(&c, []uint64{0, 1, 2, 3, 4, 5})
	rp, err := a.AllocReplica(10) // page 10: socket 0 -> replica from socket 1
	if err != nil {
		t.Fatal(err)
	}
	if rp%2 != 1 {
		t.Fatalf("replica page %d not on opposite socket", rp)
	}
	if a.FreePages(1) != 2 {
		t.Fatalf("socket-1 pool = %d, want 2", a.FreePages(1))
	}
}

func TestAllocatorExhaustion(t *testing.T) {
	c := cfg()
	a := NewAllocator(&c, []uint64{1}) // one idle page on socket 1
	if _, err := a.AllocReplica(0); err != nil {
		t.Fatal(err)
	}
	if _, err := a.AllocReplica(2); err == nil {
		t.Fatal("allocation from empty pool succeeded")
	}
	a.Donate([]uint64{3})
	if _, err := a.AllocReplica(2); err != nil {
		t.Fatal("donated page not allocatable")
	}
}

func TestManagerReplicateRelease(t *testing.T) {
	c := cfg()
	var idle []uint64
	for p := uint64(1000); p < 1100; p++ {
		idle = append(idle, p)
	}
	m := NewManager(&c, idle)
	n, err := m.Replicate(0, 40) // pages 0..39: 20 per socket
	if err != nil {
		t.Fatal(err)
	}
	if n != 40 {
		t.Fatalf("replicated %d pages, want 40", n)
	}
	// Every replicated page maps to the opposite socket.
	for p := uint64(0); p < 40; p++ {
		ra, ok := m.Table.ReplicaAddr(topology.Addr(p * uint64(c.PageBytes)))
		if !ok {
			t.Fatalf("page %d not replicated", p)
		}
		rpage := uint64(ra) / uint64(c.PageBytes)
		if rpage%2 == p%2 {
			t.Fatalf("page %d replica %d on same socket", p, rpage)
		}
	}
	// Re-replicating is idempotent.
	n, err = m.Replicate(0, 40)
	if err != nil || n != 40 {
		t.Fatalf("re-replicate: %d, %v", n, err)
	}
	// Release returns pages to the pool.
	before := m.Alloc.FreePages(0) + m.Alloc.FreePages(1)
	if rel := m.Release(0, 40); rel != 40 {
		t.Fatalf("released %d, want 40", rel)
	}
	after := m.Alloc.FreePages(0) + m.Alloc.FreePages(1)
	if after != before+40 {
		t.Fatalf("pool %d -> %d, want +40", before, after)
	}
	if m.Table.Len() != 0 {
		t.Fatal("table not empty after release")
	}
}

func TestManagerPartialOnExhaustion(t *testing.T) {
	c := cfg()
	m := NewManager(&c, []uint64{101, 103}) // two idle pages, both socket 1
	n, err := m.Replicate(0, 10)            // even pages need socket-1 replicas
	if err == nil {
		t.Fatal("expected exhaustion error")
	}
	if n == 0 || n >= 10 {
		t.Fatalf("partial replication count = %d", n)
	}
}

// Property: Map/Unmap keep the forward and reverse tables consistent.
func TestTableBijectionProperty(t *testing.T) {
	c := cfg()
	f := func(ops []uint16) bool {
		tb := NewTable(c.PageBytes)
		for _, o := range ops {
			p := uint64(o % 64)
			rp := uint64(o%64) + 1000
			if o%3 == 0 {
				tb.Unmap(p)
			} else {
				tb.Map(p, rp) // may fail; fine
			}
			if len(tb.fwd) != len(tb.rev) {
				return false
			}
			for q, r := range tb.fwd {
				if tb.rev[r] != q {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
