package obslog

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is the injected deterministic clock: each read advances 1ms.
type fakeClock struct{ ticks time.Duration }

func (c *fakeClock) now() time.Duration {
	c.ticks += time.Millisecond
	return c.ticks
}

func TestEmitStampsAndRings(t *testing.T) {
	c := &fakeClock{}
	l := New(Options{Min: Info, Clock: c.now, BaseMicros: 1_000_000, Ring: 4})

	l.Debug("queue", "ignored", Event{}) // below min: not recorded
	l.Info("queue", "enqueued", Event{Sweep: "s1", Cell: "s1/c0", Key: "k0", N: 3})
	l.Warn("worker", "lease_expired", Event{Lease: 7, Worker: "w1", Attempt: 2})

	got := l.Recent()
	if len(got) != 2 {
		t.Fatalf("Recent() returned %d events, want 2: %+v", len(got), got)
	}
	e := got[0]
	if e.Level != "info" || e.Comp != "queue" || e.Event != "enqueued" {
		t.Errorf("stamped header wrong: %+v", e)
	}
	if e.AtMicros != 1_000_000+1000 { // base + 1ms
		t.Errorf("AtMicros = %d, want %d", e.AtMicros, 1_000_000+1000)
	}
	if e.Sweep != "s1" || e.Cell != "s1/c0" || e.Key != "k0" || e.N != 3 {
		t.Errorf("correlation fields lost: %+v", e)
	}
	if got[1].AtMicros <= got[0].AtMicros {
		t.Errorf("timestamps not advancing: %d then %d", got[0].AtMicros, got[1].AtMicros)
	}
	if l.Emitted() != 2 {
		t.Errorf("Emitted() = %d, want 2", l.Emitted())
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	l := New(Options{Ring: 3})
	for i := 0; i < 7; i++ {
		l.Info("c", "e", Event{N: uint64(i)})
	}
	got := l.Recent()
	if len(got) != 3 {
		t.Fatalf("ring holds %d, want 3", len(got))
	}
	for i, want := range []uint64{4, 5, 6} {
		if got[i].N != want {
			t.Errorf("ring[%d].N = %d, want %d (oldest-first order)", i, got[i].N, want)
		}
	}
}

func TestNilLoggerIsSafe(t *testing.T) {
	var l *Logger
	l.Emit(Error, "c", "e", Event{})
	l.Info("c", "e", Event{})
	if l.On(Error) {
		t.Error("nil logger reports On(Error) = true")
	}
	if l.Recent() != nil || l.Emitted() != 0 || l.SinkFailures() != 0 {
		t.Error("nil logger accessors not zero")
	}
}

func TestJSONSinkShape(t *testing.T) {
	var buf bytes.Buffer
	l := New(Options{Clock: (&fakeClock{}).now, BaseMicros: 5, Sink: NewJSONSink(&buf)})
	l.Error("coordinator", "poisoned", Event{Sweep: "s9", Cell: "s9/c2", Key: "deadbeef", Attempt: 8, Detail: "poisoned after 8 attempts"})

	line := strings.TrimSpace(buf.String())
	var m map[string]any
	if err := json.Unmarshal([]byte(line), &m); err != nil {
		t.Fatalf("sink line is not JSON: %v\n%s", err, line)
	}
	for k, want := range map[string]any{
		"level": "error", "comp": "coordinator", "event": "poisoned",
		"sweep": "s9", "cell": "s9/c2", "key": "deadbeef",
		"attempt": float64(8), "detail": "poisoned after 8 attempts",
	} {
		if m[k] != want {
			t.Errorf("field %q = %v, want %v", k, m[k], want)
		}
	}
	// omitempty: fields not set must be absent, not zero-valued noise.
	for _, k := range []string{"lease", "worker", "n"} {
		if _, present := m[k]; present {
			t.Errorf("unset field %q present in JSON line: %s", k, line)
		}
	}
}

type failSink struct{}

func (failSink) WriteEvent(*Event) error { return errors.New("disk full") }

func TestSinkFailureCounted(t *testing.T) {
	l := New(Options{Sink: failSink{}})
	l.Info("c", "e", Event{})
	l.Info("c", "e", Event{})
	if got := l.SinkFailures(); got != 2 {
		t.Errorf("SinkFailures() = %d, want 2", got)
	}
	if got := l.Emitted(); got != 2 {
		t.Errorf("Emitted() = %d, want 2 (ring still records despite sink failure)", got)
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]Level{
		"debug": Debug, "info": Info, "": Info, " WARN ": Warn,
		"warning": Warn, "Error": Error,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v, nil", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel(loud) did not error")
	}
}

// TestConcurrentEmit exercises the lock under -race: many goroutines
// emitting and reading concurrently.
func TestConcurrentEmit(t *testing.T) {
	var buf bytes.Buffer
	l := New(Options{Ring: 16, Sink: NewJSONSink(&buf)})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				l.Info("worker", "heartbeat", Event{Lease: uint64(g*1000 + i)})
				if i%50 == 0 {
					l.Recent()
				}
			}
		}(g)
	}
	wg.Wait()
	if got := l.Emitted(); got != 1600 {
		t.Errorf("Emitted() = %d, want 1600", got)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 1600 {
		t.Errorf("sink wrote %d lines, want 1600", lines)
	}
}

// TestDisabledPathAllocs pins the zero-cost-when-disabled contract: a nil
// logger and a below-min-level emit must not allocate.
func TestDisabledPathAllocs(t *testing.T) {
	var nilLogger *Logger
	quiet := New(Options{Min: Error})

	if n := testing.AllocsPerRun(200, func() {
		nilLogger.Info("queue", "enqueued", Event{Sweep: "s", Cell: "c", Lease: 1, Key: "k", N: 2})
	}); n != 0 {
		t.Errorf("nil logger emit allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		quiet.Debug("queue", "enqueued", Event{Sweep: "s", Cell: "c", Lease: 1, Key: "k", N: 2})
	}); n != 0 {
		t.Errorf("below-min emit allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		if nilLogger.On(Debug) {
			t.Fatal("unreachable")
		}
	}); n != 0 {
		t.Errorf("On() allocates %v/op, want 0", n)
	}
}
