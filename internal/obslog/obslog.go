// Package obslog is the fleet-side structured event log: a leveled,
// race-clean JSON event stream for the sweep fabric (coordinator, lease
// queue, workers) and the cached experiment runner. It is the operational
// complement to internal/telemetry — telemetry observes *simulated* time
// inside one run; obslog observes *wall-clock* fabric time across runs,
// sweeps and processes.
//
// # Event model
//
// Every event carries a level, a component ("coordinator", "queue",
// "worker", "runner"), an event name ("lease_granted", "cache_hit", ...)
// and the correlation IDs the fabric mints: the sweep ID, the per-cell span
// ID, the lease number, the worker ID and the result-cache key. The fixed
// field set is deliberate: it keeps emission allocation-free on the stack,
// makes every record greppable by the same keys the Chrome trace and the
// SSE stream use, and means a log line, a trace span and a /watch delta for
// the same cell always join on (sweep, cell, lease).
//
// # Clock discipline
//
// obslog never reads the wall clock itself — dvelint's determinism analyzer
// stays happy without an exemption. The owner injects a monotonic elapsed
// clock (stats.Stopwatch.Elapsed) plus the absolute wall time of that
// clock's zero point; events are stamped at_us = base + elapsed. Tests
// inject a fake clock and get deterministic timestamps.
//
// # Zero cost when disabled
//
// All methods are nil-receiver safe, and every emission path starts with a
// level check, so a disabled logger (nil, or min level above the call) is a
// branch and nothing else. The Event argument is a value struct: building
// one at a guarded call site does not allocate. AllocsPerRun pins this.
package obslog

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Level orders event severity. The zero value is Debug so a zero Options
// logs everything handed to it.
type Level int8

const (
	Debug Level = iota
	Info
	Warn
	Error
)

// levelNames is indexed by Level (array lookup, no enum-coverage hole).
var levelNames = [4]string{"debug", "info", "warn", "error"}

// String renders the level the way the JSON encoding does.
func (l Level) String() string {
	if l >= 0 && int(l) < len(levelNames) {
		return levelNames[l]
	}
	return "unknown"
}

// ParseLevel reads a -log-level flag value.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return Debug, nil
	case "info", "":
		return Info, nil
	case "warn", "warning":
		return Warn, nil
	case "error":
		return Error, nil
	}
	return Info, fmt.Errorf("obslog: unknown level %q (want debug|info|warn|error)", s)
}

// Event is one structured record. Emit stamps AtMicros, Level, Comp and
// Event; call sites fill only the correlation fields that apply. The field
// set is fixed (not a KV bag) so building one is allocation-free.
type Event struct {
	// AtMicros is absolute wall-clock microseconds (base + injected
	// elapsed clock): the "wall" domain, same as the fabric Chrome trace.
	AtMicros int64  `json:"at_us"`
	Level    string `json:"level"`
	Comp     string `json:"comp"`
	Event    string `json:"event"`

	Sweep   string `json:"sweep,omitempty"`   // sweep ID minted at /run
	Cell    string `json:"cell,omitempty"`    // per-cell span ID within the sweep
	Lease   uint64 `json:"lease,omitempty"`   // lease number (0 = none)
	Worker  string `json:"worker,omitempty"`  // worker/owner ID
	Key     string `json:"key,omitempty"`     // result-cache content address
	Attempt int    `json:"attempt,omitempty"` // delivery attempt, 1-based
	N       uint64 `json:"n,omitempty"`       // event-specific magnitude (depth, ms, bytes)
	Detail  string `json:"detail,omitempty"`  // error text / free-form note
}

// Sink receives emitted events. WriteEvent must be safe for concurrent use
// only if the sink is shared across loggers; a Logger serialises its own
// calls. The *Event is valid only for the duration of the call.
type Sink interface {
	WriteEvent(e *Event) error
}

// Options configures New.
type Options struct {
	// Min is the minimum level recorded; events below it cost one branch.
	Min Level
	// Clock returns elapsed time since the logger's wall-clock zero point.
	// Nil means all events stamp at BaseMicros (still usable in tests).
	Clock func() time.Duration
	// BaseMicros is the absolute wall-clock time (µs since the Unix epoch)
	// at Clock() == 0. The cmd/ layer reads time.Now once at startup; the
	// analyzer-scoped internal packages never touch the wall clock.
	BaseMicros int64
	// Ring bounds the in-memory ring of recent events (Recent). 0 means
	// 256; negative disables the ring.
	Ring int
	// Sink receives every recorded event, if non-nil (e.g. NewJSONSink).
	Sink Sink
}

// Logger is a leveled structured event log. The nil *Logger is a valid,
// fully disabled logger.
type Logger struct {
	min   Level
	clock func() time.Duration
	base  int64
	sink  Sink

	mu      sync.Mutex
	ring    []Event // fixed-size once full
	ringCap int
	next    int // next ring write index once saturated
	wrapped bool

	emitted   uint64
	sinkFails uint64
}

// New builds a logger. A nil return never happens; disable by level or by
// using a nil *Logger.
func New(o Options) *Logger {
	ringCap := o.Ring
	if ringCap == 0 {
		ringCap = 256
	}
	if ringCap < 0 {
		ringCap = 0
	}
	l := &Logger{min: o.Min, clock: o.Clock, base: o.BaseMicros, sink: o.Sink, ringCap: ringCap}
	if ringCap > 0 {
		l.ring = make([]Event, 0, ringCap)
	}
	return l
}

// On reports whether events at level lv would be recorded. Guarding bulky
// field computation behind On keeps disabled call sites allocation-free.
func (l *Logger) On(lv Level) bool { return l != nil && lv >= l.min }

// Emit records one event at level lv. The logger stamps the timestamp,
// level, component and event name; ev supplies the correlation fields.
// No-op on a nil logger or a level below the minimum.
func (l *Logger) Emit(lv Level, comp, event string, ev Event) {
	if l == nil || lv < l.min {
		return
	}
	ev.Level = lv.String()
	ev.Comp = comp
	ev.Event = event
	ev.AtMicros = l.base
	if l.clock != nil {
		ev.AtMicros += l.clock().Microseconds()
	}

	l.mu.Lock()
	l.emitted++
	if l.ringCap > 0 {
		if len(l.ring) < l.ringCap {
			l.ring = append(l.ring, ev)
		} else {
			l.ring[l.next] = ev
			l.next = (l.next + 1) % l.ringCap
			l.wrapped = true
		}
	}
	if l.sink != nil {
		// Copy before taking the address: &ev would make the parameter
		// escape and heap-allocate at function entry, breaking the
		// 0-alloc disabled path.
		rec := ev
		if err := l.sink.WriteEvent(&rec); err != nil {
			l.sinkFails++
		}
	}
	l.mu.Unlock()
}

// Debug emits at Debug level.
func (l *Logger) Debug(comp, event string, ev Event) { l.Emit(Debug, comp, event, ev) }

// Info emits at Info level.
func (l *Logger) Info(comp, event string, ev Event) { l.Emit(Info, comp, event, ev) }

// Warn emits at Warn level.
func (l *Logger) Warn(comp, event string, ev Event) { l.Emit(Warn, comp, event, ev) }

// Error emits at Error level.
func (l *Logger) Error(comp, event string, ev Event) { l.Emit(Error, comp, event, ev) }

// Recent returns a copy of the ring, oldest first. Nil-safe.
func (l *Logger) Recent() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, 0, len(l.ring))
	if l.wrapped {
		out = append(out, l.ring[l.next:]...)
		out = append(out, l.ring[:l.next]...)
	} else {
		out = append(out, l.ring...)
	}
	return out
}

// Emitted returns how many events were recorded. Nil-safe.
func (l *Logger) Emitted() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.emitted
}

// SinkFailures returns how many events a sink refused — the log's "drop"
// ledger, never silent. Nil-safe.
func (l *Logger) SinkFailures() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sinkFails
}

// JSONSink writes one compact JSON object per line. It serialises its own
// writes so one sink may back several loggers (coordinator + queue +
// embedded runner sharing a -log file).
type JSONSink struct {
	mu  sync.Mutex
	w   io.Writer
	enc *json.Encoder
}

// NewJSONSink wraps w (append-only; callers own closing it).
func NewJSONSink(w io.Writer) *JSONSink {
	return &JSONSink{w: w, enc: json.NewEncoder(w)}
}

// WriteEvent writes the event as one JSON line.
func (s *JSONSink) WriteEvent(e *Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.enc.Encode(e)
}
