package energy

import (
	"math"
	"testing"
)

func act(n uint64, ch int, cycles uint64) Activity {
	return Activity{
		Activates: n, Reads: n, Writes: n / 4,
		Channels: ch, Cycles: cycles, ClockGHz: 3.0,
	}
}

func TestEnergyPositiveAndAdditive(t *testing.T) {
	p := DDR4()
	b := p.Energy(act(1000, 2, 1_000_000))
	for name, v := range map[string]float64{
		"activate": b.ActivateNJ, "read": b.ReadNJ, "write": b.WriteNJ,
		"background": b.BackgroundNJ, "refresh": b.RefreshNJ,
	} {
		if v <= 0 {
			t.Errorf("%s energy = %v, want > 0", name, v)
		}
	}
	if math.Abs(b.Total()-(b.ActivateNJ+b.ReadNJ+b.WriteNJ+b.BackgroundNJ+b.RefreshNJ)) > 1e-9 {
		t.Fatal("Total != sum of parts")
	}
}

func TestMoreChannelsMoreBackground(t *testing.T) {
	p := DDR4()
	b1 := p.Energy(act(1000, 2, 1_000_000))
	b2 := p.Energy(act(1000, 4, 1_000_000))
	if b2.BackgroundNJ <= b1.BackgroundNJ || b2.RefreshNJ <= b1.RefreshNJ {
		t.Fatal("doubling channels must raise standing energy")
	}
	if b2.ActivateNJ != b1.ActivateNJ {
		t.Fatal("dynamic energy must depend on events, not channels")
	}
}

func TestDynamicEnergyScalesWithEvents(t *testing.T) {
	p := DDR4()
	b1 := p.Energy(act(1000, 2, 1_000_000))
	b2 := p.Energy(act(2000, 2, 1_000_000))
	if math.Abs(b2.ActivateNJ/b1.ActivateNJ-2) > 1e-9 {
		t.Fatal("activate energy not linear in activates")
	}
}

func TestMemoryEDP(t *testing.T) {
	p := DDR4()
	b := p.Energy(act(1000, 2, 3_000_000_000)) // 1 s at 3 GHz
	edp := MemoryEDP(b, 3_000_000_000, 3.0)
	if math.Abs(edp-b.Total()) > 1e-6*b.Total() {
		t.Fatalf("EDP over 1s = %v, want energy %v", edp, b.Total())
	}
}

// The paper's Section VII shape: replication raises memory-EDP (double the
// provisioned channels) but lowers system-EDP when execution is shorter.
func TestSystemEDPShape(t *testing.T) {
	p := DDR4()
	baseCycles := uint64(1_000_000_000)
	dveCycles := uint64(850_000_000) // ~18% faster, like the dynamic scheme
	base := p.Energy(act(5_000_000, 2, baseCycles))
	dve := p.Energy(act(5_000_000, 4, dveCycles))

	memBase := MemoryEDP(base, baseCycles, 3.0)
	memDve := MemoryEDP(dve, dveCycles, 3.0)
	if memDve <= memBase*0.9 {
		t.Logf("memory EDP base %.3g dve %.3g", memBase, memDve)
	}

	sysBase, sysDve := SystemEDP(base, baseCycles, dve, dveCycles, 3.0)
	if sysDve >= sysBase {
		t.Fatalf("system EDP did not improve: base %.3g dve %.3g", sysBase, sysDve)
	}
}

func TestSystemEDPEqualRunsEqualEnergy(t *testing.T) {
	p := DDR4()
	b := p.Energy(act(1000, 2, 1_000_000))
	s1, s2 := SystemEDP(b, 1_000_000, b, 1_000_000, 3.0)
	if math.Abs(s1-s2) > 1e-9*s1 {
		t.Fatal("identical runs must have identical system EDP")
	}
}

func TestSelfRefreshCharging(t *testing.T) {
	p := DDR4()
	active := p.Energy(Activity{Activates: 1000, Reads: 1000, Channels: 4,
		Cycles: 1_000_000, ClockGHz: 3.0})
	parked := p.Energy(Activity{Activates: 1000, Reads: 1000, Channels: 2,
		IdleChannels: 2, Cycles: 1_000_000, ClockGHz: 3.0})
	if parked.SelfRefreshNJ <= 0 {
		t.Fatal("idle channels drew no self-refresh energy")
	}
	// Self-refresh must be much cheaper than active standby for the same
	// capacity — that is the whole point of parking idle DIMMs.
	if parked.Total() >= active.Total() {
		t.Fatalf("parked config (%.1f nJ) not cheaper than all-active (%.1f nJ)",
			parked.Total(), active.Total())
	}
	if active.SelfRefreshNJ != 0 {
		t.Fatal("fully active config charged for self-refresh")
	}
}
