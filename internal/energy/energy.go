// Package energy implements a DDR4 current-based (IDD) DRAM energy model in
// the style of the Micron power calculator the paper uses, and the EDP
// (energy-delay product) accounting of Section VII: memory-EDP from DRAM
// event counts, and system-EDP using the paper's assumption that memory is
// about 18% of total system power in a 2-socket NUMA server.
package energy

// Params are per-device DDR4 electrical and timing parameters.
// Defaults correspond to an 8Gb DDR4-2400 x8 device.
type Params struct {
	VDD float64 // volts

	// Currents in mA.
	IDD0  float64 // one-bank activate-precharge
	IDD2N float64 // precharge standby
	IDD3N float64 // active standby
	IDD4R float64 // burst read
	IDD4W float64 // burst write
	IDD5B float64 // burst refresh
	IDD6  float64 // self-refresh (idle provisioned capacity)

	// Timings in ns.
	TRCns    float64 // activate-to-activate (row cycle)
	TBurstNs float64 // data burst duration (BL8 at 2400 MT/s)
	TRFCns   float64 // refresh cycle time
	TREFIns  float64 // average refresh interval

	DevicesPerRank int
}

// DDR4 returns representative 8Gb DDR4-2400 x8 datasheet values.
func DDR4() Params {
	return Params{
		VDD:            1.2,
		IDD0:           55,
		IDD2N:          34,
		IDD3N:          44,
		IDD4R:          140,
		IDD4W:          130,
		IDD5B:          190,
		IDD6:           30,
		TRCns:          46.16,
		TBurstNs:       3.33,
		TRFCns:         350,
		TREFIns:        7800,
		DevicesPerRank: 8,
	}
}

// Breakdown is the energy split of one run, in nanojoules.
type Breakdown struct {
	ActivateNJ    float64
	ReadNJ        float64
	WriteNJ       float64
	BackgroundNJ  float64
	RefreshNJ     float64
	SelfRefreshNJ float64 // idle provisioned capacity parked in self-refresh
}

// Total returns the summed energy in nJ.
func (b Breakdown) Total() float64 {
	return b.ActivateNJ + b.ReadNJ + b.WriteNJ + b.BackgroundNJ + b.RefreshNJ +
		b.SelfRefreshNJ
}

// Activity summarises one run's DRAM behaviour (accumulated by the
// simulator's stats counters).
type Activity struct {
	Activates uint64 // row misses/conflicts (each implies ACT+PRE)
	Reads     uint64 // CAS read bursts
	Writes    uint64 // CAS write bursts
	// Channels actively used, and provisioned-but-idle channels parked in
	// self-refresh. The paper notes idle memory "still uses energy for
	// refresh, even in a low power (self-refresh) state" — when Dvé turns
	// that idle capacity into replicas, the fair baseline comparison charges
	// the baseline for the same DIMMs at IDD6.
	Channels     int
	IdleChannels int
	Cycles       uint64
	ClockGHz     float64
}

// Energy evaluates the model: per-event dynamic energy plus background and
// refresh power integrated over the run for every provisioned channel —
// which is how replication's standing cost appears even when idle, as the
// paper notes for memory-EDP.
func (p Params) Energy(a Activity) Breakdown {
	ns := float64(a.Cycles) / a.ClockGHz // run length in ns
	dev := float64(p.DevicesPerRank)
	mWtoNJ := func(mA, durNs float64) float64 {
		// mA * V * ns = pJ; /1000 = nJ.
		return mA * p.VDD * durNs / 1000
	}
	b := Breakdown{
		ActivateNJ: float64(a.Activates) * mWtoNJ(p.IDD0-p.IDD3N, p.TRCns) * dev,
		ReadNJ:     float64(a.Reads) * mWtoNJ(p.IDD4R-p.IDD3N, p.TBurstNs) * dev,
		WriteNJ:    float64(a.Writes) * mWtoNJ(p.IDD4W-p.IDD3N, p.TBurstNs) * dev,
	}
	// Background: active standby for every device of every channel.
	b.BackgroundNJ = mWtoNJ(p.IDD3N, ns) * dev * float64(a.Channels)
	// Refresh: one tRFC burst every tREFI per rank.
	refreshes := ns / p.TREFIns
	b.RefreshNJ = refreshes * mWtoNJ(p.IDD5B-p.IDD3N, p.TRFCns) * dev * float64(a.Channels)
	// Idle provisioned channels sit in self-refresh.
	b.SelfRefreshNJ = mWtoNJ(p.IDD6, ns) * dev * float64(a.IdleChannels)
	return b
}

// MemoryEDP returns the memory energy-delay product in nJ*s.
func MemoryEDP(b Breakdown, cycles uint64, clockGHz float64) float64 {
	seconds := float64(cycles) / (clockGHz * 1e9)
	return b.Total() * seconds
}

// MemoryPowerShare is the paper's assumption: memory is ~18% of total system
// power in a 2-socket NUMA system (Barroso et al.).
const MemoryPowerShare = 0.18

// SystemEDP derives system energy-delay products for a baseline run and a
// candidate run: the non-memory subsystem is assumed to draw constant power,
// calibrated so memory is MemoryPowerShare of the *baseline* system power.
// Shorter execution then reduces system-EDP even when memory energy rises —
// the paper's Section VII result.
func SystemEDP(baseMem Breakdown, baseCycles uint64, candMem Breakdown, candCycles uint64, clockGHz float64) (baseEDP, candEDP float64) {
	baseSec := float64(baseCycles) / (clockGHz * 1e9)
	candSec := float64(candCycles) / (clockGHz * 1e9)
	memPowerBase := baseMem.Total() / baseSec // nW... nJ/s
	otherPower := memPowerBase * (1 - MemoryPowerShare) / MemoryPowerShare
	baseSys := baseMem.Total() + otherPower*baseSec
	candSys := candMem.Total() + otherPower*candSec
	return baseSys * baseSec, candSys * candSec
}
