// Package fault models DRAM subsystem failures at every level of the Fig 2
// hierarchy — cell, row, column, bank, chip, DIMM, channel, and memory
// controller — and determines whether a read of a given address fails its
// local ECC check under a configured local code. The resulting predicate
// plugs into the memory controllers (mem.Controller.FaultFn), which is how
// injected faults surface in the simulator and exercise Dvé's replica
// recovery path.
//
// Faults are no longer a static pre-run set: Set supports thread-safe
// add/remove/update keyed by fault ID, so a dynamic injector (package ras)
// can model the transient → intermittent → hard lifecycle while the
// simulation runs and the recovery path's repair writes clear transients.
// See README.md in this directory for the lifecycle and escalation-ladder
// semantics.
package fault

import (
	"fmt"
	"sync"

	"dve/internal/topology"
)

// Kind is the failure granularity.
type Kind int

const (
	Cell Kind = iota
	Row
	Column
	Bank
	Chip
	DIMM
	Channel
	Controller
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Cell:
		return "cell"
	case Row:
		return "row"
	case Column:
		return "column"
	case Bank:
		return "bank"
	case Chip:
		return "chip"
	case DIMM:
		return "dimm"
	case Channel:
		return "channel"
	case Controller:
		return "controller"
	}
	return "?"
}

// LocalCode is the per-controller detection/correction capability.
type LocalCode int

const (
	// CodeNone: no protection; any fault is silent (never reported as a
	// failed read — it would be an SDC).
	CodeNone LocalCode = iota
	// CodeSECDED corrects single-bit (cell) errors, detects double-bit.
	CodeSECDED
	// CodeChipkill corrects any single-chip error per rank.
	CodeChipkill
	// CodeDSD detects (but cannot correct) up to double-symbol errors —
	// Dvé's baseline-equivalent detection configuration.
	CodeDSD
	// CodeTSD detects up to triple-symbol errors — Dvé's strengthened
	// detection configuration.
	CodeTSD
)

// Fault is one injected failure.
type Fault struct {
	Kind   Kind
	Socket int
	// Channel/Bank/Row/Chip narrow the blast radius for the finer kinds;
	// fields beyond the Kind's granularity are ignored.
	Channel int
	Bank    int
	Row     uint64
	Chip    int
	// Addr is used by Cell/Column faults (the column is Addr's line).
	Addr topology.Addr
	// Transient faults disappear after the first repair write.
	Transient bool
	// DutyPct, when in (0,100), makes the fault intermittent: a covering
	// read observes the error only DutyPct percent of the time, derived
	// deterministically from the fault identity and the read sequence
	// number. 0 (the default) means the fault fires on every covering read.
	DutyPct uint8
}

func (f Fault) String() string {
	return fmt.Sprintf("%s@socket%d(ch%d,bank%d,row%d,chip%d)",
		f.Kind, f.Socket, f.Channel, f.Bank, f.Row, f.Chip)
}

// ID names one injected fault for later removal or escalation.
type ID uint64

type tracked struct {
	id ID
	f  Fault
}

// Set is a collection of active faults over one machine. All methods are
// safe for concurrent use; the simulation's hot path (ReadFails) holds the
// lock briefly and allocates nothing.
type Set struct {
	amap *topology.AddrMap
	code LocalCode

	mu     sync.Mutex
	faults []tracked // guarded by mu
	nextID ID        // guarded by mu

	// readSeq numbers ReadFails calls; intermittent faults key their duty
	// cycle off it so the flap pattern is deterministic per run.
	readSeq uint64 // guarded by mu
	// silent counts reads where an active fault covered the address but the
	// local code could not even detect it (CodeNone): the read returned
	// corrupt data as good — a silent data corruption.
	silent uint64 // guarded by mu
}

// NewSet creates an empty fault set judging reads with the given local code.
func NewSet(cfg *topology.Config, code LocalCode) *Set {
	return &Set{amap: topology.NewAddrMap(cfg), code: code}
}

// Inject adds a fault (see Add for the ID-returning form).
func (s *Set) Inject(f Fault) { s.Add(f) }

// Add injects a fault and returns its ID for later Remove/Update.
func (s *Set) Add(f Fault) ID {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	s.faults = append(s.faults, tracked{id: s.nextID, f: f})
	return s.nextID
}

// Remove expires the fault with the given ID; it reports whether the fault
// was still active (a repair may have cleared it first).
func (s *Set) Remove(id ID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.faults {
		if s.faults[i].id == id {
			s.faults = append(s.faults[:i], s.faults[i+1:]...)
			return true
		}
	}
	return false
}

// Update replaces the fault with the given ID (the injector's lifecycle
// escalation: transient → intermittent → hard). It reports whether the
// fault was still active.
func (s *Set) Update(id ID, f Fault) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.faults {
		if s.faults[i].id == id {
			s.faults[i].f = f
			return true
		}
	}
	return false
}

// Get returns the fault with the given ID, if still active.
func (s *Set) Get(id ID) (Fault, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.faults {
		if s.faults[i].id == id {
			return s.faults[i].f, true
		}
	}
	return Fault{}, false
}

// Active returns the current number of faults.
func (s *Set) Active() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.faults)
}

// SilentCorruptions returns how many reads consumed corrupt data without
// the local code detecting it (possible only under CodeNone).
func (s *Set) SilentCorruptions() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.silent
}

// Repair removes transient faults covering the address (models the
// write-then-reread repair of Section V-B2); intermittent and hard faults
// stay.
func (s *Set) Repair(socket int, a topology.Addr) {
	s.mu.Lock()
	defer s.mu.Unlock()
	co := s.amap.Decode(a)
	line := s.amap.LineOf(a)
	kept := s.faults[:0]
	for _, t := range s.faults {
		if t.f.Transient && s.covers(&t.f, socket, co, line) {
			continue
		}
		kept = append(kept, t)
	}
	s.faults = kept
}

// covers reports whether fault f affects the given pre-decoded address on
// the socket.
func (s *Set) covers(f *Fault, socket int, co topology.DRAMCoord, line topology.Line) bool {
	if f.Socket != socket {
		return false
	}
	switch f.Kind {
	case Controller:
		return true
	case Channel:
		return f.Channel == co.Channel
	case DIMM:
		return f.Channel == co.Channel // one DIMM per channel in Table II
	case Bank:
		return f.Channel == co.Channel && f.Bank == co.Bank
	case Row:
		return f.Channel == co.Channel && f.Bank == co.Bank && f.Row == co.Row
	case Chip:
		// A chip holds a fixed slice of every line in its rank; every line
		// of the channel is touched by the chip.
		return f.Channel == co.Channel
	case Cell, Column:
		return s.amap.LineOf(f.Addr) == line
	}
	return false
}

// fires reports whether a covering fault is observed by this particular
// read: hard and transient faults always fire; intermittent faults fire on
// DutyPct percent of reads, chosen by a deterministic hash of the fault ID
// and the read sequence number.
func fires(t *tracked, seq uint64) bool {
	if t.f.DutyPct == 0 || t.f.DutyPct >= 100 {
		return true
	}
	return mix(uint64(t.id)*0x9e3779b97f4a7c15+seq)%100 < uint64(t.f.DutyPct)
}

// mix is a splitmix64 finalizer: a cheap, stateless, well-distributed hash.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// ReadFails reports whether a read of the address fails the local ECC check
// — i.e. the local code detects an error it cannot correct, requiring
// recovery from the replica. (Errors the local code corrects silently, and
// faults invisible to CodeNone, return false.) This is the hot path for
// every DRAM access while faults are active: it performs no allocation.
func (s *Set) ReadFails(socket int, a topology.Addr) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.readSeq++
	if len(s.faults) == 0 {
		return false
	}
	co := s.amap.Decode(a)
	line := s.amap.LineOf(a)
	n := 0
	var first Kind
	for i := range s.faults {
		t := &s.faults[i]
		if s.covers(&t.f, socket, co, line) && fires(t, s.readSeq) {
			if n == 0 {
				first = t.f.Kind
			}
			n++
		}
	}
	if n == 0 {
		return false
	}
	switch s.code {
	case CodeNone:
		// Nothing is ever *detected* — corruption is silent.
		s.silent++
		return false
	case CodeSECDED:
		// Only a single cell fault is correctable.
		if n == 1 && first == Cell {
			return false
		}
		return true
	case CodeChipkill:
		// One failed chip per rank is correctable; so is a single cell,
		// row, column or bank fault (all within one chip's blast radius or
		// a single symbol per word).
		if n == 1 {
			switch first {
			case Cell, Column, Row, Bank, Chip:
				return s.chipFaultsOn(socket, co.Channel) > 1
			case DIMM, Channel, Controller:
				// Blast radius exceeds one chip's symbols: chipkill cannot
				// correct, fall through to detected-uncorrectable.
			}
		}
		return true
	case CodeDSD, CodeTSD:
		// Detection-only: everything detected is uncorrectable locally —
		// by design, since Dvé corrects from the replica.
		return true
	}
	return true
}

// chipFaultsOn counts distinct failed chips covering the address's channel.
// Chips are tracked in a bitset (no allocation); chip indices alias mod 64,
// which is far beyond any real per-channel chip count. Caller-locked: s.mu
// must be held (ReadFails calls it from inside its critical section).
func (s *Set) chipFaultsOn(socket, channel int) int {
	var bits uint64
	n := 0
	for i := range s.faults {
		f := &s.faults[i].f
		if f.Kind == Chip && f.Socket == socket && f.Channel == channel {
			b := uint64(1) << (uint(f.Chip) % 64)
			if bits&b == 0 {
				bits |= b
				n++
			}
		}
	}
	return n
}

// Predicate returns a closure suitable for mem.Controller.FaultFn.
func (s *Set) Predicate() func(socket int, a topology.Addr) bool {
	return s.ReadFails
}
