// Package fault models DRAM subsystem failures at every level of the Fig 2
// hierarchy — cell, row, column, bank, chip, DIMM, channel, and memory
// controller — and determines whether a read of a given address fails its
// local ECC check under a configured local code. The resulting predicate
// plugs into the memory controllers (mem.Controller.FaultFn), which is how
// injected faults surface in the simulator and exercise Dvé's replica
// recovery path.
package fault

import (
	"fmt"

	"dve/internal/topology"
)

// Kind is the failure granularity.
type Kind int

const (
	Cell Kind = iota
	Row
	Column
	Bank
	Chip
	DIMM
	Channel
	Controller
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Cell:
		return "cell"
	case Row:
		return "row"
	case Column:
		return "column"
	case Bank:
		return "bank"
	case Chip:
		return "chip"
	case DIMM:
		return "dimm"
	case Channel:
		return "channel"
	case Controller:
		return "controller"
	}
	return "?"
}

// LocalCode is the per-controller detection/correction capability.
type LocalCode int

const (
	// CodeNone: no protection; any fault is silent (never reported as a
	// failed read — it would be an SDC).
	CodeNone LocalCode = iota
	// CodeSECDED corrects single-bit (cell) errors, detects double-bit.
	CodeSECDED
	// CodeChipkill corrects any single-chip error per rank.
	CodeChipkill
	// CodeDSD detects (but cannot correct) up to double-symbol errors —
	// Dvé's baseline-equivalent detection configuration.
	CodeDSD
	// CodeTSD detects up to triple-symbol errors — Dvé's strengthened
	// detection configuration.
	CodeTSD
)

// Fault is one injected failure.
type Fault struct {
	Kind   Kind
	Socket int
	// Channel/Bank/Row/Chip narrow the blast radius for the finer kinds;
	// fields beyond the Kind's granularity are ignored.
	Channel int
	Bank    int
	Row     uint64
	Chip    int
	// Addr is used by Cell/Column faults (the column is Addr's line).
	Addr topology.Addr
	// Transient faults disappear after the first repair write.
	Transient bool
}

func (f Fault) String() string {
	return fmt.Sprintf("%s@socket%d(ch%d,bank%d,row%d,chip%d)",
		f.Kind, f.Socket, f.Channel, f.Bank, f.Row, f.Chip)
}

// Set is a collection of active faults over one machine.
type Set struct {
	amap   *topology.AddrMap
	code   LocalCode
	faults []Fault
}

// NewSet creates an empty fault set judging reads with the given local code.
func NewSet(cfg *topology.Config, code LocalCode) *Set {
	return &Set{amap: topology.NewAddrMap(cfg), code: code}
}

// Inject adds a fault.
func (s *Set) Inject(f Fault) { s.faults = append(s.faults, f) }

// Active returns the current number of faults.
func (s *Set) Active() int { return len(s.faults) }

// Repair removes transient faults covering the address (models the
// write-then-reread repair of Section V-B2); hard faults stay.
func (s *Set) Repair(socket int, a topology.Addr) {
	kept := s.faults[:0]
	for _, f := range s.faults {
		if f.Transient && s.covers(f, socket, a) {
			continue
		}
		kept = append(kept, f)
	}
	s.faults = kept
}

// covers reports whether fault f affects the address on the socket.
func (s *Set) covers(f Fault, socket int, a topology.Addr) bool {
	if f.Socket != socket {
		return false
	}
	co := s.amap.Decode(a)
	switch f.Kind {
	case Controller:
		return true
	case Channel:
		return f.Channel == co.Channel
	case DIMM:
		return f.Channel == co.Channel // one DIMM per channel in Table II
	case Bank:
		return f.Channel == co.Channel && f.Bank == co.Bank
	case Row:
		return f.Channel == co.Channel && f.Bank == co.Bank && f.Row == co.Row
	case Chip:
		// A chip holds a fixed slice of every line in its rank; every line
		// of the channel is touched by the chip.
		return f.Channel == co.Channel
	case Cell, Column:
		return s.amap.LineOf(f.Addr) == s.amap.LineOf(a)
	}
	return false
}

// chipFaultsOn counts distinct failed chips covering the address's channel.
func (s *Set) chipFaultsOn(socket, channel int) int {
	chips := map[int]bool{}
	for _, f := range s.faults {
		if f.Kind == Chip && f.Socket == socket && f.Channel == channel {
			chips[f.Chip] = true
		}
	}
	return len(chips)
}

// ReadFails reports whether a read of the address fails the local ECC check
// — i.e. the local code detects an error it cannot correct, requiring
// recovery from the replica. (Errors the local code corrects silently, and
// faults invisible to CodeNone, return false.)
func (s *Set) ReadFails(socket int, a topology.Addr) bool {
	var covering []Fault
	for _, f := range s.faults {
		if s.covers(f, socket, a) {
			covering = append(covering, f)
		}
	}
	if len(covering) == 0 {
		return false
	}
	switch s.code {
	case CodeNone:
		// Nothing is ever *detected* — corruption is silent.
		return false
	case CodeSECDED:
		// Only a single cell fault is correctable.
		if len(covering) == 1 && covering[0].Kind == Cell {
			return false
		}
		return true
	case CodeChipkill:
		// One failed chip per rank is correctable; so is a single cell,
		// row, column or bank fault (all within one chip's blast radius or
		// a single symbol per word).
		if len(covering) == 1 {
			switch covering[0].Kind {
			case Cell, Column, Row, Bank, Chip:
				co := s.amap.Decode(a)
				return s.chipFaultsOn(socket, co.Channel) > 1
			}
		}
		return true
	case CodeDSD, CodeTSD:
		// Detection-only: everything detected is uncorrectable locally —
		// by design, since Dvé corrects from the replica.
		return true
	}
	return true
}

// Predicate returns a closure suitable for mem.Controller.FaultFn.
func (s *Set) Predicate() func(socket int, a topology.Addr) bool {
	return s.ReadFails
}
