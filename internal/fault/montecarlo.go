package fault

import (
	"math/rand"

	"dve/internal/ecc"
)

// Monte-Carlo detection-coverage measurement over the real codecs: inject
// k-symbol errors into encoded words and measure how often the code misses
// them. This validates the detection-coverage assumptions of the Section IV
// analytical model (the paper cites a 6.9% three-chip miss probability for
// its DSD construction; our RS codes' measured rates are reported alongside
// in EXPERIMENTS.md).

// CoverageResult summarises one measurement.
type CoverageResult struct {
	Trials       int
	Missed       int // undetected (silent) corruptions
	Miscorrected int // "corrected" to the wrong data (SSC decoders only)
	Detected     int
	Corrected    int
}

// MissRate returns the fraction of trials whose corruption went undetected.
func (c CoverageResult) MissRate() float64 {
	if c.Trials == 0 {
		return 0
	}
	return float64(c.Missed+c.Miscorrected) / float64(c.Trials)
}

// MeasureRS256Detection corrupts k distinct symbols with random nonzero
// patterns and counts detection outcomes of the detect-only decoder.
func MeasureRS256Detection(n, k, symbols, trials int, seed int64) CoverageResult {
	rs := ecc.NewRS256(n, k)
	r := rand.New(rand.NewSource(seed))
	res := CoverageResult{Trials: trials}
	data := make([]byte, k)
	for t := 0; t < trials; t++ {
		r.Read(data)
		cw := rs.Encode(data)
		for _, p := range r.Perm(n)[:symbols] {
			cw[p] ^= byte(1 + r.Intn(255))
		}
		if rs.Detect(cw) {
			res.Detected++
		} else {
			res.Missed++
		}
	}
	return res
}

// MeasureChipkillDecode corrupts `symbols` chips and runs the SSC decoder,
// classifying each trial as corrected (back to the truth), detected, missed,
// or miscorrected.
func MeasureChipkillDecode(n, k, symbols, trials int, seed int64) CoverageResult {
	rs := ecc.NewRS256(n, k)
	r := rand.New(rand.NewSource(seed))
	res := CoverageResult{Trials: trials}
	data := make([]byte, k)
	for t := 0; t < trials; t++ {
		r.Read(data)
		cw := rs.Encode(data)
		for _, p := range r.Perm(n)[:symbols] {
			cw[p] ^= byte(1 + r.Intn(255))
		}
		out, outcome := rs.DecodeSSC(cw)
		same := true
		for i := range data {
			if out[i] != data[i] {
				same = false
				break
			}
		}
		switch {
		case outcome == ecc.OK && same && symbols == 0:
			res.Corrected++
		case outcome == ecc.OK && !same:
			res.Missed++ // corruption produced another valid codeword
		case outcome == ecc.Corrected && same:
			res.Corrected++
		case outcome == ecc.Corrected && !same:
			res.Miscorrected++
		default:
			res.Detected++
		}
	}
	return res
}

// MeasureRS16Detection is the TSD (GF(2^16), 3 check symbols) variant.
func MeasureRS16Detection(n, k, symbols, trials int, seed int64) CoverageResult {
	rs := ecc.NewRS16(n, k)
	r := rand.New(rand.NewSource(seed))
	res := CoverageResult{Trials: trials}
	data := make([]uint16, k)
	for t := 0; t < trials; t++ {
		for i := range data {
			data[i] = uint16(r.Intn(1 << 16))
		}
		cw := rs.Encode(data)
		for _, p := range r.Perm(n)[:symbols] {
			cw[p] ^= uint16(1 + r.Intn(1<<16-1))
		}
		if rs.Detect(cw) {
			res.Detected++
		} else {
			res.Missed++
		}
	}
	return res
}
