package fault

import (
	"testing"

	"dve/internal/topology"
)

func newSet(code LocalCode) (*Set, *topology.Config) {
	cfg := topology.Default(topology.ProtoDeny)
	return NewSet(&cfg, code), &cfg
}

func TestControllerFaultCoversWholeSocket(t *testing.T) {
	s, _ := newSet(CodeTSD)
	s.Inject(Fault{Kind: Controller, Socket: 0})
	if !s.ReadFails(0, 0) || !s.ReadFails(0, 1<<30) {
		t.Fatal("controller fault must cover every address of its socket")
	}
	if s.ReadFails(1, 0) {
		t.Fatal("controller fault leaked to the other socket")
	}
}

func TestChannelFaultScoped(t *testing.T) {
	s, cfg := newSet(CodeTSD)
	s.Inject(Fault{Kind: Channel, Socket: 0, Channel: 0})
	amap := topology.NewAddrMap(cfg)
	var hit0, hit1 bool
	for a := topology.Addr(0); a < topology.Addr(1<<16); a += 64 {
		co := amap.Decode(a)
		fails := s.ReadFails(0, a)
		if co.Channel == 0 {
			hit0 = hit0 || fails
			if !fails {
				t.Fatalf("address %#x on failed channel did not fail", a)
			}
		} else {
			hit1 = hit1 || fails
		}
	}
	if !hit0 || hit1 {
		t.Fatalf("channel scoping wrong: ch0 %v ch1 %v", hit0, hit1)
	}
}

func TestBankAndRowScoping(t *testing.T) {
	s, cfg := newSet(CodeDSD)
	amap := topology.NewAddrMap(cfg)
	target := topology.Addr(4096 * 33)
	co := amap.Decode(target)
	s.Inject(Fault{Kind: Row, Socket: 0, Channel: co.Channel, Bank: co.Bank, Row: co.Row})
	if !s.ReadFails(0, target) {
		t.Fatal("row fault missed its own row")
	}
	// A different row of the same bank is unaffected (global stride = local
	// row stride x sockets).
	other := target + topology.Addr(uint64(cfg.RowBufferBytes)*uint64(cfg.BanksPerRank)*
		uint64(cfg.ChannelsPerSkt)*uint64(cfg.Sockets))
	if co2 := amap.Decode(other); co2.Bank == co.Bank && co2.Row != co.Row {
		if s.ReadFails(0, other) {
			t.Fatal("row fault leaked to another row")
		}
	} else {
		t.Fatalf("test address construction wrong: %+v vs %+v", co, co2)
	}
}

func TestChipkillCorrectsSingleChip(t *testing.T) {
	s, _ := newSet(CodeChipkill)
	s.Inject(Fault{Kind: Chip, Socket: 0, Channel: 0, Chip: 3})
	if s.ReadFails(0, 0) {
		t.Fatal("Chipkill must correct a single failed chip (no failed read)")
	}
	// A second chip on the same channel exceeds SSC.
	s.Inject(Fault{Kind: Chip, Socket: 0, Channel: 0, Chip: 5})
	if !s.ReadFails(0, 0) {
		t.Fatal("two failed chips must defeat Chipkill")
	}
}

func TestDetectionOnlyCodesAlwaysFailOnFault(t *testing.T) {
	for _, code := range []LocalCode{CodeDSD, CodeTSD} {
		s, _ := newSet(code)
		s.Inject(Fault{Kind: Cell, Socket: 0, Addr: 128})
		if !s.ReadFails(0, 128) {
			t.Fatalf("code %v: detection-only must report uncorrectable", code)
		}
		if s.ReadFails(0, 256) {
			t.Fatalf("code %v: cell fault leaked to another line", code)
		}
	}
}

func TestSECDEDCorrectsSingleCellOnly(t *testing.T) {
	s, _ := newSet(CodeSECDED)
	s.Inject(Fault{Kind: Cell, Socket: 0, Addr: 64})
	if s.ReadFails(0, 64) {
		t.Fatal("SEC-DED corrects a single-bit cell fault")
	}
	s.Inject(Fault{Kind: Cell, Socket: 0, Addr: 64})
	if !s.ReadFails(0, 64) {
		t.Fatal("two cell faults on a line must fail SEC-DED")
	}
}

func TestCodeNoneSilent(t *testing.T) {
	s, _ := newSet(CodeNone)
	s.Inject(Fault{Kind: Controller, Socket: 0})
	if s.ReadFails(0, 0) {
		t.Fatal("CodeNone can never detect (SDC, not DUE)")
	}
}

func TestRepairRemovesTransientOnly(t *testing.T) {
	s, _ := newSet(CodeTSD)
	s.Inject(Fault{Kind: Cell, Socket: 0, Addr: 64, Transient: true})
	s.Inject(Fault{Kind: Cell, Socket: 0, Addr: 640})
	s.Repair(0, 64)
	if s.ReadFails(0, 64) {
		t.Fatal("transient fault survived repair")
	}
	s.Repair(0, 640)
	if !s.ReadFails(0, 640) {
		t.Fatal("hard fault removed by repair")
	}
	if s.Active() != 1 {
		t.Fatalf("active faults = %d, want 1", s.Active())
	}
}

func TestPredicateMatchesReadFails(t *testing.T) {
	s, _ := newSet(CodeTSD)
	s.Inject(Fault{Kind: Controller, Socket: 1})
	p := s.Predicate()
	if p(0, 0) != s.ReadFails(0, 0) || p(1, 0) != s.ReadFails(1, 0) {
		t.Fatal("Predicate disagrees with ReadFails")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		Cell: "cell", Row: "row", Column: "column", Bank: "bank",
		Chip: "chip", DIMM: "dimm", Channel: "channel", Controller: "controller",
		Kind(99): "?",
	} {
		if k.String() != want {
			t.Errorf("Kind(%d) = %q, want %q", k, k.String(), want)
		}
	}
}

func TestMonteCarloDetectionGuarantees(t *testing.T) {
	// 1- and 2-symbol errors: never missed by the r=2 code.
	for _, k := range []int{1, 2} {
		res := MeasureRS256Detection(18, 16, k, 400, 11)
		if res.Missed != 0 {
			t.Errorf("DSD missed %d/%d %d-symbol errors", res.Missed, res.Trials, k)
		}
	}
	// 3-symbol errors may occasionally alias (the analytical model's
	// detection-miss term); the miss rate must be small.
	res := MeasureRS256Detection(18, 16, 3, 2000, 12)
	if res.MissRate() > 0.05 {
		t.Errorf("DSD 3-symbol miss rate = %v, want < 5%%", res.MissRate())
	}
	// TSD: 1..3 symbols never missed.
	for _, k := range []int{1, 2, 3} {
		res := MeasureRS16Detection(35, 32, k, 200, 13)
		if res.Missed != 0 {
			t.Errorf("TSD missed %d %d-symbol errors", res.Missed, k)
		}
	}
}

func TestMonteCarloChipkill(t *testing.T) {
	// Single chip: always corrected back to the truth.
	res := MeasureChipkillDecode(18, 16, 1, 500, 14)
	if res.Corrected != res.Trials {
		t.Fatalf("Chipkill corrected %d/%d single-chip trials", res.Corrected, res.Trials)
	}
	// Two chips: mostly detected, some miscorrected (the correction/
	// detection trade of Section II).
	res2 := MeasureChipkillDecode(18, 16, 2, 2000, 15)
	if res2.Detected == 0 {
		t.Fatal("no 2-chip errors detected")
	}
	if res2.Corrected > 0 {
		t.Fatal("2-chip errors cannot be genuinely corrected by SSC")
	}
	if res2.MissRate() > 0.10 {
		t.Fatalf("2-chip miss+miscorrect rate %v too high", res2.MissRate())
	}
	if res.MissRate() != 0 {
		t.Fatal("single-chip trials must have zero miss rate")
	}
}

func TestAddRemoveUpdateLifecycle(t *testing.T) {
	s, _ := newSet(CodeTSD)
	id := s.Add(Fault{Kind: Cell, Socket: 0, Addr: 64, Transient: true})
	if !s.ReadFails(0, 64) {
		t.Fatal("added fault not observed")
	}
	// Escalate to intermittent, then to hard.
	if !s.Update(id, Fault{Kind: Cell, Socket: 0, Addr: 64, DutyPct: 50}) {
		t.Fatal("Update lost the fault")
	}
	if f, ok := s.Get(id); !ok || f.DutyPct != 50 {
		t.Fatalf("Get after Update = %+v, %v", f, ok)
	}
	// A repair write must NOT clear the (non-transient) intermittent fault.
	s.Repair(0, 64)
	if s.Active() != 1 {
		t.Fatal("repair removed an intermittent fault")
	}
	if !s.Remove(id) {
		t.Fatal("Remove lost the fault")
	}
	if s.Remove(id) {
		t.Fatal("double Remove succeeded")
	}
	if s.Active() != 0 || s.ReadFails(0, 64) {
		t.Fatal("fault survived Remove")
	}
}

func TestIntermittentDutyCycleDeterministic(t *testing.T) {
	observe := func() (fails int, pattern []bool) {
		s, _ := newSet(CodeTSD)
		s.Add(Fault{Kind: Cell, Socket: 0, Addr: 64, DutyPct: 30})
		for i := 0; i < 1000; i++ {
			f := s.ReadFails(0, 64)
			pattern = append(pattern, f)
			if f {
				fails++
			}
		}
		return
	}
	fails, p1 := observe()
	// ~30% of reads observe the fault; allow wide tolerance, but it must
	// neither always fire nor never fire.
	if fails < 150 || fails > 450 {
		t.Fatalf("duty 30%%: %d/1000 reads failed", fails)
	}
	// The flap pattern is a pure function of (fault ID, read sequence):
	// a fresh identical set reproduces it bit for bit.
	_, p2 := observe()
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("intermittent pattern diverged at read %d", i)
		}
	}
}

func TestCodeNoneCountsSilentCorruptions(t *testing.T) {
	s, _ := newSet(CodeNone)
	s.Inject(Fault{Kind: Controller, Socket: 0})
	for i := 0; i < 5; i++ {
		if s.ReadFails(0, topology.Addr(i*64)) {
			t.Fatal("CodeNone detected a fault")
		}
	}
	s.ReadFails(1, 0) // other socket: clean
	if got := s.SilentCorruptions(); got != 5 {
		t.Fatalf("SilentCorruptions = %d, want 5", got)
	}
}

func TestReadFailsDoesNotAllocate(t *testing.T) {
	s, _ := newSet(CodeTSD)
	for i := 0; i < 64; i++ {
		s.Add(Fault{Kind: Cell, Socket: 0, Addr: topology.Addr(i * 64)})
	}
	s.Add(Fault{Kind: Chip, Socket: 0, Channel: 0, Chip: 2})
	avg := testing.AllocsPerRun(200, func() {
		s.ReadFails(0, 64)
		s.ReadFails(0, 1<<20)
	})
	if avg != 0 {
		t.Fatalf("ReadFails allocates %.1f objects per call pair, want 0", avg)
	}
}

func TestConcurrentInjectionAndReads(t *testing.T) {
	// Exercised under -race: a scrubber goroutine repairing while an
	// injector adds/escalates/removes must not race.
	s, _ := newSet(CodeTSD)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 2000; i++ {
			id := s.Add(Fault{Kind: Cell, Socket: 0,
				Addr: topology.Addr(i % 32 * 64), Transient: i%2 == 0})
			if i%3 == 0 {
				s.Update(id, Fault{Kind: Cell, Socket: 0,
					Addr: topology.Addr(i % 32 * 64), DutyPct: 40})
			}
			if i%2 == 1 {
				s.Remove(id)
			}
		}
	}()
	for i := 0; i < 2000; i++ {
		s.ReadFails(0, topology.Addr(i%64*64))
		if i%7 == 0 {
			s.Repair(0, topology.Addr(i%32*64))
		}
	}
	<-done
	s.Active()
}
