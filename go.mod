module dve

go 1.22
