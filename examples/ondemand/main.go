// On-demand replication: the flexible RMT mapping of Section V-D. The OS
// carves replica pages from idle memory, enables replication for just the
// workload's hot shared region, and later releases it under capacity
// pressure — trading reliability/performance for capacity at runtime, with
// unmapped pages transparently falling back to a single copy.
package main

import (
	"fmt"
	"log"

	"dve"
)

func main() {
	w, _ := dve.WorkloadByName("bfs")
	cfg := dve.DefaultConfig(dve.Deny)
	opts := dve.SimOptions{WarmupOps: 80_000, MeasureOps: 250_000}

	base, err := dve.Simulate(w, dve.DefaultConfig(dve.Baseline), opts)
	if err != nil {
		log.Fatal(err)
	}

	// Idle memory: a pool of free pages far above the workload's footprint
	// (the underutilized capacity the paper exploits).
	var idle []uint64
	for p := uint64(1 << 30 / 4096); p < 1<<30/4096+200_000; p++ {
		idle = append(idle, p)
	}

	// The workload's shared region occupies the low pages; its hot shared
	// area is the first ~32 MB. Replicate only that.
	od := dve.NewOnDemand(cfg, idle)
	hotPages := 32 << 20 / 4096
	n, err := od.Replicate(0, hotPages)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replicated %d pages (%d MB) out of idle memory; %d+%d idle pages remain\n",
		n, n*4096>>20, od.IdlePages(0), od.IdlePages(1))

	partial, err := dve.Simulate(w, cfg, dve.SimOptions{
		WarmupOps: opts.WarmupOps, MeasureOps: opts.MeasureOps, OnDemand: od,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%-34s %14s %10s\n", "configuration", "cycles", "speedup")
	fmt.Printf("%-34s %14d %10s\n", "baseline (no replication)", base.Cycles, "1.00x")
	fmt.Printf("%-34s %14d %9.2fx   (replica reads: %d)\n",
		"on-demand: hot 32MB replicated", partial.Cycles,
		dve.Speedup(base, partial), partial.Counters.ReplicaReads)

	// Full fixed-function replication for comparison.
	full, err := dve.Simulate(w, cfg, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-34s %14d %9.2fx   (replica reads: %d)\n",
		"full fixed-function replication", full.Cycles,
		dve.Speedup(base, full), full.Counters.ReplicaReads)

	// Capacity crunch: the control plane reclaims the replicas; memory is
	// hot-plugged back and the pages fall back to single copies.
	released := od.Release(0, hotPages)
	fmt.Printf("\ncapacity crunch: released %d pages; %d replicated pages remain; idle pool back to %d+%d\n",
		released, od.ReplicatedPages(), od.IdlePages(0), od.IdlePages(1))

	after, err := dve.Simulate(w, cfg, dve.SimOptions{
		WarmupOps: opts.WarmupOps, MeasureOps: opts.MeasureOps, OnDemand: od,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-34s %14d %9.2fx   (replica reads: %d)\n",
		"after release (single copies)", after.Cycles,
		dve.Speedup(base, after), after.Counters.ReplicaReads)
}
