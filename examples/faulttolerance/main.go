// Fault tolerance: inject DRAM subsystem failures of increasing blast
// radius — a hard cell fault, an entire chip, a whole channel, and finally a
// memory-controller failure — and watch Dvé detect each error locally and
// recover it from the replica on the other socket (Section V-B2). A final
// scenario fails both copies to show the detected-uncorrectable (machine
// check) path.
package main

import (
	"fmt"
	"log"

	"dve"
	"dve/internal/fault"
	"dve/internal/topology"
)

func run(name string, build func(cfg *topology.Config) *fault.Set) {
	w, _ := dve.WorkloadByName("graph500")
	cfg := dve.DefaultConfig(dve.Deny)
	set := build(&cfg)
	res, err := dve.Simulate(w, cfg, dve.SimOptions{
		MeasureOps: 150_000,
		Faults: func(socket int, addr uint64) bool {
			return set.ReadFails(socket, topology.Addr(addr))
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	c := res.Counters
	fmt.Printf("%-28s CE=%-7d recovered=%-7d DUE=%-5d degraded-lines=%d\n",
		name, c.CorrectedErrors, c.Recoveries, c.DetectedUncorrect, c.DegradedLines)
}

func main() {
	fmt.Println("Dvé replica recovery under injected faults (deny protocol, TSD detection)")
	fmt.Println()

	run("hard cell fault", func(cfg *topology.Config) *fault.Set {
		s := fault.NewSet(cfg, fault.CodeTSD)
		s.Inject(fault.Fault{Kind: fault.Cell, Socket: 0, Addr: 1 << 12})
		return s
	})

	run("chip failure", func(cfg *topology.Config) *fault.Set {
		s := fault.NewSet(cfg, fault.CodeTSD)
		s.Inject(fault.Fault{Kind: fault.Chip, Socket: 0, Channel: 0, Chip: 3})
		return s
	})

	run("channel failure", func(cfg *topology.Config) *fault.Set {
		s := fault.NewSet(cfg, fault.CodeTSD)
		s.Inject(fault.Fault{Kind: fault.Channel, Socket: 0, Channel: 1})
		return s
	})

	run("memory controller failure", func(cfg *topology.Config) *fault.Set {
		// The failure mode no ECC-based scheme survives: everything behind
		// socket 0's controller errors out; the replica on socket 1 serves.
		s := fault.NewSet(cfg, fault.CodeTSD)
		s.Inject(fault.Fault{Kind: fault.Controller, Socket: 0})
		return s
	})

	run("both controllers (data loss)", func(cfg *topology.Config) *fault.Set {
		s := fault.NewSet(cfg, fault.CodeTSD)
		s.Inject(fault.Fault{Kind: fault.Controller, Socket: 0})
		s.Inject(fault.Fault{Kind: fault.Controller, Socket: 1})
		return s
	})

	fmt.Println()
	fmt.Println("single-sided faults recover with zero DUEs; only the simultaneous")
	fmt.Println("failure of both independent copies is uncorrectable — the design's")
	fmt.Println("sole Achilles heel, which Table I shows is vanishingly rare.")
}
