// Protocol duel: why Dvé needs both protocol families. A read-mostly
// workload (xsbench: giant shared cross-section table) favors the deny
// protocol's eager pushes; a private-write-heavy workload (lbm: per-thread
// lattice updates) favors the allow protocol's lazy pulls. The sampling-
// based dynamic protocol profiles both each epoch and tracks the winner
// (Section V-C5).
package main

import (
	"fmt"
	"log"

	"dve"
)

func duel(name string) {
	w, ok := dve.WorkloadByName(name)
	if !ok {
		log.Fatalf("workload %s not found", name)
	}
	opts := dve.SimOptions{WarmupOps: 100_000, MeasureOps: 250_000}

	base, err := dve.Simulate(w, dve.DefaultConfig(dve.Baseline),
		dve.SimOptions{WarmupOps: opts.WarmupOps, MeasureOps: opts.MeasureOps, Classify: true})
	if err != nil {
		log.Fatal(err)
	}
	mix := base.Counters.SharingMix()
	fmt.Printf("%s  (sharing classes: priv-read %.0f%%, read-only %.0f%%, read/write %.0f%%, priv-RW %.0f%%)\n",
		name, mix[0]*100, mix[1]*100, mix[2]*100, mix[3]*100)

	for _, p := range []dve.Protocol{dve.Allow, dve.Deny, dve.Dynamic} {
		res, err := dve.Simulate(w, dve.DefaultConfig(p), opts)
		if err != nil {
			log.Fatal(err)
		}
		extra := ""
		if p == dve.Dynamic {
			extra = fmt.Sprintf("   (epochs: allow=%d deny=%d)",
				res.Counters.EpochsAllow, res.Counters.EpochsDeny)
		}
		fmt.Printf("  %-8s %.3fx speedup, %5.1f%% of baseline link traffic%s\n",
			p, dve.Speedup(base, res),
			100*float64(res.Counters.LinkBytes)/float64(base.Counters.LinkBytes), extra)
	}
	fmt.Println()
}

func main() {
	fmt.Println("allow vs deny vs dynamic on opposite sharing patterns")
	fmt.Println()
	duel("xsbench") // read-mostly: deny should win
	duel("lbm")     // private-write-heavy: allow should win
	fmt.Println("the dynamic protocol detects the better family on both.")
}
