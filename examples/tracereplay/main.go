// Trace workflow: capture a benchmark's multi-threaded memory trace to a
// file (the role Prism/SynchroTrace traces play in the paper's methodology),
// then replay the identical access stream through different memory-system
// configurations — the apples-to-apples comparison trace-driven simulation
// exists for.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	idve "dve/internal/dve"
	"dve/internal/topology"
	"dve/internal/trace"
	"dve/internal/workload"
)

func main() {
	spec, _ := workload.ByName("stencil", 16)
	path := filepath.Join(os.TempDir(), "stencil.trc")

	// 1. Capture.
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	const ops = 400_000
	cst, err := trace.Capture(f, spec, ops)
	if err != nil {
		log.Fatal(err)
	}
	if cst.ClampedCompute > 0 {
		fmt.Printf("note: %d compute gaps clamped to the format's u16 ceiling\n", cst.ClampedCompute)
	}
	f.Close()
	st, _ := os.Stat(path)
	fmt.Printf("captured %d ops of %s to %s (%.1f MB)\n\n",
		ops, spec.Name, path, float64(st.Size())/(1<<20))

	// 2. Replay the same trace under each configuration.
	fmt.Printf("%-12s %14s %14s %14s\n", "protocol", "cycles", "link-KB", "replica-reads")
	var baseCycles uint64
	for _, p := range []topology.Protocol{
		topology.ProtoBaseline, topology.ProtoAllow, topology.ProtoDeny,
	} {
		g, err := os.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		src, err := trace.Load(g)
		g.Close()
		if err != nil {
			log.Fatal(err)
		}
		res, err := idve.Run(spec, idve.RunConfig{
			Cfg:        topology.Default(p),
			WarmupOps:  100_000,
			MeasureOps: 250_000,
			Source:     src,
		})
		if err != nil {
			log.Fatal(err)
		}
		note := ""
		if p == topology.ProtoBaseline {
			baseCycles = res.Cycles
		} else {
			note = fmt.Sprintf("   (%.2fx)", float64(baseCycles)/float64(res.Cycles))
		}
		fmt.Printf("%-12s %14d %14d %14d%s\n",
			p, res.Cycles, res.Counters.LinkBytes/1024, res.Counters.ReplicaReads, note)
	}
	fmt.Println("\nidentical input stream; only the memory system differs.")
}
