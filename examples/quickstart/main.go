// Quickstart: simulate one benchmark on the 2-socket NUMA machine with and
// without Dvé's coherent replication, and report the dual benefit — the
// speedup from reading the nearer replica, and the reliability machinery
// standing by (verified protocols, replica recovery path).
package main

import (
	"fmt"
	"log"

	"dve"
)

func main() {
	w, ok := dve.WorkloadByName("xsbench")
	if !ok {
		log.Fatal("workload not found")
	}
	opts := dve.SimOptions{WarmupOps: 100_000, MeasureOps: 300_000}

	base, err := dve.Simulate(w, dve.DefaultConfig(dve.Baseline), opts)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := dve.Simulate(w, dve.DefaultConfig(dve.Dynamic), opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload %s on a 2-socket, 16-core NUMA system\n\n", w.Name)
	fmt.Printf("baseline NUMA:       %12d cycles, %8d KB over the socket link\n",
		base.Cycles, base.Counters.LinkBytes/1024)
	fmt.Printf("Dvé (dynamic):       %12d cycles, %8d KB over the socket link\n",
		rep.Cycles, rep.Counters.LinkBytes/1024)
	fmt.Printf("\nspeedup:             %.2fx\n", dve.Speedup(base, rep))
	fmt.Printf("link traffic:        %.0f%% of baseline\n",
		100*float64(rep.Counters.LinkBytes)/float64(base.Counters.LinkBytes))
	fmt.Printf("reads served by the local replica: %d\n", rep.Counters.ReplicaReads)

	// The same replicas provide the reliability benefit; the protocols that
	// keep them in sync are exhaustively verified.
	for _, fam := range []string{"allow", "deny"} {
		verdict, ok := dve.VerifyProtocol(fam)
		fmt.Printf("\n%v  (ok=%v)", verdict, ok)
	}
	m := dve.Reliability()
	fmt.Printf("\n\nanalytical DUE rate: Chipkill %.1e vs Dvé %.1e per 10^9 h (%.0fx lower)\n",
		m.Chipkill().DUE, m.DveTSD().DUE, m.Chipkill().DUE/m.DveTSD().DUE)
}
