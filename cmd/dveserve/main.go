// Command dveserve runs the sweep fabric: an HTTP front end over the
// experiment runner and the content-addressed result cache, so repeated
// sweeps across a team or a CI fleet pay for each simulation cell once.
// One binary covers all three roles:
//
//	# A lone node (the default): intake + in-process pool.
//	dveserve -addr :8437 -cache .dvecache -scale quick -workers 4 -queue 64
//
//	# A coordinator plus N workers. Cells are leased to workers with a
//	# heartbeat deadline; a worker that dies mid-cell costs one lease TTL,
//	# after which the cell is re-enqueued (and, with no healthy workers
//	# left, the coordinator's own pool degrades gracefully to cover).
//	dveserve -role coordinator -addr :8437 -cache .dvecache -lease-ttl 30s
//	dveserve -role worker -peer http://coord:8437 -id w1 -workers 4
//
//	curl -X POST localhost:8437/run \
//	     -d '{"workloads":["fft","lbm"],"protocols":["baseline","deny"]}'
//	curl localhost:8437/result/<key>
//	curl localhost:8437/metrics
//	curl localhost:8437/metrics/prom   # Prometheus text format
//	curl localhost:8437/healthz        # liveness
//	curl localhost:8437/readyz        # readiness (503 once draining)
//
// SIGTERM (or Ctrl-C) drains gracefully: /readyz flips to 503 first so load
// balancers stop routing, then intake closes with 503, queued cells finish
// (on workers or the local pool), then the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"dve/internal/experiments"
	"dve/internal/obslog"
	"dve/internal/results"
	"dve/internal/serve"
	"dve/internal/stats"
)

// openLog builds the structured event logger from the -log/-log-level
// flags. This is the one place dveserve reads the wall clock for
// observability: BaseMicros anchors the injected monotonic clock to the Unix
// epoch once at startup, so internal packages stay off time.Now (the
// determinism analyzer enforces that scope). An empty path disables logging
// entirely (the nil logger costs one branch per site).
func openLog(path, level string) (*obslog.Logger, func(), error) {
	if path == "" {
		return nil, func() {}, nil
	}
	lv, err := obslog.ParseLevel(level)
	if err != nil {
		return nil, nil, err
	}
	var w *os.File
	closeFn := func() {}
	switch path {
	case "stderr", "-":
		w = os.Stderr
	default:
		f, err := os.Create(path)
		if err != nil {
			return nil, nil, fmt.Errorf("-log: %w", err)
		}
		w = f
		closeFn = func() { f.Close() }
	}
	sw := stats.StartWallClock()
	return obslog.New(obslog.Options{
		Min:        lv,
		Clock:      sw.Elapsed,
		BaseMicros: time.Now().UnixMicro(),
		Sink:       obslog.NewJSONSink(w),
	}), closeFn, nil
}

func main() {
	var (
		addr     = flag.String("addr", ":8437", "listen address (coordinator/solo roles)")
		cacheDir = flag.String("cache", ".dvecache", "result cache directory (coordinator/solo roles)")
		scale    = flag.String("scale", "quick", "quick|standard|full")
		workers  = flag.Int("workers", 4, "simulation pool size (worker role: concurrent cells)")
		queue    = flag.Int("queue", 64, "queued-cell bound (enqueues past it get 429)")
		retries  = flag.Int("retries", 1, "per-cell retry budget")
		role     = flag.String("role", serve.RoleSolo, "solo|coordinator|worker")
		peer     = flag.String("peer", "", "coordinator base URL (worker role)")
		id       = flag.String("id", "", "worker name (worker role; default host:pid)")
		leaseTTL = flag.Duration("lease-ttl", 30*time.Second,
			"how long a worker may hold a cell between heartbeats before it is re-enqueued")
		maxAttempts = flag.Int("max-attempts", 5, "lease grants per cell before it is poisoned")
		drainGrace  = flag.Duration("drain-grace", 0,
			"pause between flipping /readyz and closing intake on shutdown")
		logPath = flag.String("log", "",
			"structured JSON event log destination: a file path, or stderr|- (empty = disabled)")
		logLevel = flag.String("log-level", "info", "debug|info|warn|error")
	)
	flag.Parse()

	sc, err := experiments.ScaleByName(*scale)
	if err != nil {
		fatal(err)
	}
	log, closeLog, err := openLog(*logPath, *logLevel)
	if err != nil {
		fatal(err)
	}
	defer closeLog()

	if *role == "worker" {
		runWorker(*peer, *id, *workers, *retries, sc, log)
		return
	}

	store, err := results.Open(*cacheDir)
	if err != nil {
		fatal(err)
	}
	srv, err := serve.New(serve.Config{
		Runner: experiments.Runner{
			Scale:       sc,
			Parallelism: *workers,
			Cache:       store,
			Retries:     *retries,
			Log:         log,
		},
		Workers:     *workers,
		QueueDepth:  *queue,
		Role:        *role,
		LeaseTTL:    *leaseTTL,
		MaxAttempts: *maxAttempts,
		DrainGrace:  *drainGrace,
		Log:         log,
	})
	if err != nil {
		fatal(err)
	}
	srv.Start()

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "dveserve: %s listening on %s (scale %s, %d workers, queue %d, lease-ttl %s, cache %s)\n",
		*role, *addr, *scale, *workers, *queue, *leaseTTL, store.Dir())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "dveserve: draining (queued cells will finish)")
	srv.Drain()
	if err := hs.Shutdown(context.Background()); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "dveserve: drained; cache %s\n", store.Stats())
}

// runWorker runs n fabric worker loops against the coordinator at peer
// until SIGTERM. Workers hold no cache: results travel in the complete RPC
// and the coordinator's store is authoritative.
func runWorker(peer, id string, n, retries int, sc experiments.Scale, log *obslog.Logger) {
	if peer == "" {
		fatal(fmt.Errorf("-role worker needs -peer <coordinator url>"))
	}
	if id == "" {
		host, _ := os.Hostname()
		id = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	if n <= 0 {
		n = 1
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		w, err := serve.NewWorker(serve.WorkerConfig{
			Coordinator: peer,
			ID:          fmt.Sprintf("%s/%d", id, i),
			Runner:      experiments.Runner{Scale: sc, Retries: retries, Log: log},
			Log:         log,
		})
		if err != nil {
			fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Run(ctx)
			st := w.Stats()
			fmt.Fprintf(os.Stderr, "dveserve: worker %s done: leases=%d completed=%d failed=%d abandoned=%d rpc-retries=%d\n",
				w.ID(), st.Leases, st.Completed, st.Failed, st.Abandoned, st.RPCRetries)
		}()
	}
	fmt.Fprintf(os.Stderr, "dveserve: %d worker loop(s) %s -> %s\n", n, id, peer)
	<-ctx.Done()
	wg.Wait()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dveserve:", err)
	os.Exit(1)
}
