// Command dveserve runs the sweep service: an HTTP front end over the
// experiment runner and the content-addressed result cache, so repeated
// sweeps across a team or a CI fleet pay for each simulation cell once.
//
// Usage:
//
//	dveserve -addr :8437 -cache .dvecache -scale quick -workers 4 -queue 64
//
//	curl -X POST localhost:8437/run \
//	     -d '{"workloads":["fft","lbm"],"protocols":["baseline","deny"]}'
//	curl localhost:8437/result/<key>
//	curl localhost:8437/metrics
//	curl localhost:8437/metrics/prom   # Prometheus text format
//
// SIGTERM (or Ctrl-C) drains gracefully: intake stops with 503, queued
// cells finish, then the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"dve/internal/experiments"
	"dve/internal/results"
	"dve/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", ":8437", "listen address")
		cacheDir = flag.String("cache", ".dvecache", "result cache directory")
		scale    = flag.String("scale", "quick", "quick|standard|full")
		workers  = flag.Int("workers", 4, "simulation worker pool size")
		queue    = flag.Int("queue", 64, "queued-cell bound (enqueues past it get 429)")
		retries  = flag.Int("retries", 1, "per-cell retry budget")
	)
	flag.Parse()

	sc, err := experiments.ScaleByName(*scale)
	if err != nil {
		fatal(err)
	}
	store, err := results.Open(*cacheDir)
	if err != nil {
		fatal(err)
	}
	srv, err := serve.New(serve.Config{
		Runner: experiments.Runner{
			Scale:       sc,
			Parallelism: *workers,
			Cache:       store,
			Retries:     *retries,
		},
		Workers:    *workers,
		QueueDepth: *queue,
	})
	if err != nil {
		fatal(err)
	}
	srv.Start()

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "dveserve: listening on %s (scale %s, %d workers, queue %d, cache %s)\n",
		*addr, *scale, *workers, *queue, store.Dir())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "dveserve: draining (queued cells will finish)")
	srv.Drain()
	if err := hs.Shutdown(context.Background()); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "dveserve: drained; cache %s\n", store.Stats())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dveserve:", err)
	os.Exit(1)
}
