// Command dvecampaign sweeps the RAS campaign matrix: every scenario
// (dynamic fault storms, intermittent flapping, hardening, static plants,
// mid-run socket kills, baseline controls) under every seed, asserting
// zero silent data corruption, zero coherence-invariant violations, and
// DUEs only where the Section IV reliability model permits them. One JSON
// RAS journal is written per run.
//
// The -hammer mode instead sweeps the adversarial RowHammer matrix
// (attack intensity × scrub cadence × protection scheme), scores the
// replica + scrub/repair defense ladder, and writes figure data; every
// intensity-0 cell is also re-run with the aggressor machinery absent
// entirely and the two journals must be byte-identical.
//
// Usage:
//
//	dvecampaign -seeds 3 -ops 50000 -out ras-journals
//	dvecampaign -scenario socket-kill -seeds 5
//	dvecampaign -list
//	dvecampaign -hammer -intensities 0,0.4,0.7 -scrubs 2000,8000 -figure hammer.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"dve/internal/coherence"
	"dve/internal/experiments"
	"dve/internal/ras"
	"dve/internal/results"
	"dve/internal/topology"
)

func main() {
	var (
		nseeds   = flag.Int("seeds", 3, "seeds per scenario (seed values 1..N)")
		ops      = flag.Uint64("ops", 50_000, "memory operations per run")
		out      = flag.String("out", "ras-journals", "journal output directory (empty = no journals)")
		cacheDir = flag.String("cache", "", "result cache directory (empty = no caching)")
		scenario = flag.String("scenario", "", "run only the named scenario (default: all)")
		verbose  = flag.Bool("v", false, "print per-run event and counter detail")
		list     = flag.Bool("list", false, "list scenarios and exit")

		hammer      = flag.Bool("hammer", false, "run the RowHammer sweep instead of the fault campaign")
		intensities = flag.String("intensities", "0,0.4,0.7", "hammer: comma-separated aggressor intensities in [0,1)")
		scrubs      = flag.String("scrubs", "2000,8000", "hammer: comma-separated scrub intervals (cycles)")
		protocols   = flag.String("protocols", "baseline,deny", "hammer: comma-separated protection schemes")
		figure      = flag.String("figure", "", "hammer: write sweep figure data to this JSON file")
		hammerTh    = flag.Uint("hammer-threshold", 0, "hammer: activation threshold override (0 = campaign default)")
		doubleSided = flag.Bool("double-sided", false, "hammer: bracket victim rows from both neighbours")
		hworkload   = flag.String("workload", "fft", "hammer: victim workload")
	)
	flag.Parse()

	var cache *results.Store
	if *cacheDir != "" {
		store, err := results.Open(*cacheDir)
		if err != nil {
			fatal(err)
		}
		cache = store
	}
	if *hammer {
		runHammer(hammerArgs{
			seeds: *nseeds, ops: *ops, out: *out, cache: cache,
			intensities: *intensities, scrubs: *scrubs, protocols: *protocols,
			figure: *figure, threshold: uint32(*hammerTh),
			doubleSided: *doubleSided, workload: *hworkload, verbose: *verbose,
		})
		return
	}

	scenarios := ras.DefaultScenarios()
	if *list {
		for _, sc := range scenarios {
			fmt.Printf("%-18s workload=%-10s protocol=%-8s inject=%-5v kill=%-5v allow-due=%v\n",
				sc.Name, sc.Workload, sc.Protocol, sc.Inject != nil, sc.KillAtCyc > 0, sc.AllowDUE)
		}
		return
	}
	if *scenario != "" {
		var picked []ras.Scenario
		for _, sc := range scenarios {
			if sc.Name == *scenario {
				picked = append(picked, sc)
			}
		}
		if len(picked) == 0 {
			fatal(fmt.Errorf("unknown scenario %q (use -list)", *scenario))
		}
		scenarios = picked
	}
	seeds := make([]int64, *nseeds)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}

	cc := ras.CampaignConfig{
		Seeds:      seeds,
		MeasureOps: *ops,
		Scenarios:  scenarios,
		OutDir:     *out,
		Cache:      cache,
		Progress:   func(r ras.RunReport) { report(r, *verbose) },
	}
	res, err := ras.RunCampaign(cc)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\n%d runs, %d failed\n", len(res.Runs), res.Failures)
	if cc.Cache != nil {
		fmt.Fprintf(os.Stderr, "dvecampaign: cache %s\n", cc.Cache.Stats())
	}
	if res.Failures > 0 {
		os.Exit(1)
	}
}

func report(r ras.RunReport, verbose bool) {
	status := "ok"
	if !r.OK() {
		status = "FAIL"
	}
	c := &r.Counters
	fmt.Printf("%-18s seed=%d %-4s cycles=%-9d detect=%-5d retry=%d/%d recover=%-5d repair=%d/%d retire=%d degraded=%d due=%d demoted=%d sdc=%d\n",
		r.Scenario, r.Seed, status, r.Cycles,
		r.Journal.Count(coherence.EvDetect),
		c.RetrySuccesses, c.RetriedReads,
		c.Recoveries,
		c.RepairWrites-c.RepairVerifyFails, c.RepairWrites,
		c.PagesRetired, c.DegradedLines, c.DetectedUncorrect,
		c.DemotedLines, c.SilentCorruptions)
	if verbose {
		fmt.Printf("  journal: %d events (%s)\n", r.Journal.Len(), r.JournalPath)
		fmt.Printf("  injector: inject=%d escalate=%d harden=%d expire=%d  kill: sockets=%d drained-reads=%d dropped-writes=%d\n",
			r.Journal.Count(ras.EvInject), r.Journal.Count(ras.EvEscalate),
			r.Journal.Count(ras.EvHarden), r.Journal.Count(ras.EvExpire),
			c.SocketKills, c.DegradedReads, c.RepairVerifyFails)
	}
	for _, v := range r.Violations {
		fmt.Printf("  VIOLATION: %s\n", v)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dvecampaign:", err)
	os.Exit(1)
}

type hammerArgs struct {
	seeds       int
	ops         uint64
	out         string
	cache       *results.Store
	intensities string
	scrubs      string
	protocols   string
	figure      string
	threshold   uint32
	doubleSided bool
	workload    string
	verbose     bool
}

// runHammer sweeps the adversarial matrix, prints the defense table, writes
// figure data, and self-checks the disarmed path: every intensity-0 cell is
// re-run with no hammer machinery at all and must journal byte-identically.
func runHammer(a hammerArgs) {
	intensities, err := parseFloats(a.intensities)
	if err != nil {
		fatal(fmt.Errorf("-intensities: %w", err))
	}
	scrubs, err := parseUints(a.scrubs)
	if err != nil {
		fatal(fmt.Errorf("-scrubs: %w", err))
	}
	protos, err := parseProtocols(a.protocols)
	if err != nil {
		fatal(fmt.Errorf("-protocols: %w", err))
	}
	seeds := make([]int64, a.seeds)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	r := experiments.Runner{Cache: a.cache}
	fig, err := r.HammerSweep(experiments.HammerSweepConfig{
		Workload:    a.workload,
		Intensities: intensities,
		ScrubsCyc:   scrubs,
		Protocols:   protos,
		Seeds:       seeds,
		MeasureOps:  a.ops,
		DoubleSided: a.doubleSided,
		Threshold:   a.threshold,
		OutDir:      a.out,
		Progress:    func(rr ras.RunReport) { report(rr, a.verbose) },
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\n%s", experiments.FormatHammer(fig))
	if a.figure != "" {
		b, err := json.MarshalIndent(fig, "", " ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(a.figure, append(b, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("figure data: %s\n", a.figure)
	}
	mismatches, err := hammerTwinCheck(a, scrubs, protos, seeds)
	if err != nil {
		fatal(err)
	}
	if a.cache != nil {
		fmt.Fprintf(os.Stderr, "dvecampaign: cache %s\n", a.cache.Stats())
	}
	if fig.Failures > 0 || mismatches > 0 {
		os.Exit(1)
	}
}

// hammerTwinCheck reruns each intensity-0 cell with Hammer disabled
// entirely (no source wrapper, no flip machinery, default thresholds) and
// compares journals byte-for-byte: arming the defense at intensity 0 must
// not perturb the simulation at all.
func hammerTwinCheck(a hammerArgs, scrubs []uint64, protos []topology.Protocol, seeds []int64) (int, error) {
	build := func(proto topology.Protocol, scrub uint64, armed bool) ras.Scenario {
		sc := ras.Scenario{
			Name:             fmt.Sprintf("twin-%s-scrub%d-armed%v", proto, scrub, armed),
			Workload:         a.workload,
			Protocol:         proto,
			ScrubIntervalCyc: scrub,
			ScrubBatch:       16,
		}
		if armed {
			sc.Hammer = &ras.HammerScenario{Intensity: 0, DoubleSided: a.doubleSided}
		}
		return sc
	}
	mismatches := 0
	for _, proto := range protos {
		for _, scrub := range scrubs {
			var journals [2][][]byte
			for v, armed := range []bool{true, false} {
				res, err := ras.RunCampaign(ras.CampaignConfig{
					Seeds:      seeds,
					MeasureOps: a.ops,
					Scenarios:  []ras.Scenario{build(proto, scrub, armed)},
					Cache:      a.cache,
				})
				if err != nil {
					return 0, err
				}
				for _, run := range res.Runs {
					b, err := run.Journal.Bytes()
					if err != nil {
						return 0, err
					}
					journals[v] = append(journals[v], b)
				}
			}
			for i := range journals[0] {
				if string(journals[0][i]) != string(journals[1][i]) {
					mismatches++
					fmt.Printf("TWIN MISMATCH: %s scrub=%d seed=%d: intensity-0 journal differs from no-hammer journal\n",
						proto, scrub, seeds[i])
				}
			}
		}
	}
	if mismatches == 0 {
		fmt.Printf("twin check: %d intensity-0 cells byte-identical to unarmed runs\n",
			len(protos)*len(scrubs)*len(seeds))
	}
	return mismatches, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseUints(s string) ([]uint64, error) {
	var out []uint64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(f), 10, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseProtocols(s string) ([]topology.Protocol, error) {
	known := []topology.Protocol{
		topology.ProtoBaseline, topology.ProtoAllow, topology.ProtoDeny,
		topology.ProtoDynamic, topology.ProtoIntelMirror,
	}
	var out []topology.Protocol
next:
	for _, f := range strings.Split(s, ",") {
		name := strings.TrimSpace(f)
		for _, p := range known {
			if p.String() == name {
				out = append(out, p)
				continue next
			}
		}
		return nil, fmt.Errorf("unknown protocol %q", name)
	}
	return out, nil
}
