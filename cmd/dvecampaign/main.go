// Command dvecampaign sweeps the RAS campaign matrix: every scenario
// (dynamic fault storms, intermittent flapping, hardening, static plants,
// mid-run socket kills, baseline controls) under every seed, asserting
// zero silent data corruption, zero coherence-invariant violations, and
// DUEs only where the Section IV reliability model permits them. One JSON
// RAS journal is written per run.
//
// Usage:
//
//	dvecampaign -seeds 3 -ops 50000 -out ras-journals
//	dvecampaign -scenario socket-kill -seeds 5
//	dvecampaign -list
package main

import (
	"flag"
	"fmt"
	"os"

	"dve/internal/coherence"
	"dve/internal/ras"
	"dve/internal/results"
)

func main() {
	var (
		nseeds   = flag.Int("seeds", 3, "seeds per scenario (seed values 1..N)")
		ops      = flag.Uint64("ops", 50_000, "memory operations per run")
		out      = flag.String("out", "ras-journals", "journal output directory (empty = no journals)")
		cacheDir = flag.String("cache", "", "result cache directory (empty = no caching)")
		scenario = flag.String("scenario", "", "run only the named scenario (default: all)")
		verbose  = flag.Bool("v", false, "print per-run event and counter detail")
		list     = flag.Bool("list", false, "list scenarios and exit")
	)
	flag.Parse()

	scenarios := ras.DefaultScenarios()
	if *list {
		for _, sc := range scenarios {
			fmt.Printf("%-18s workload=%-10s protocol=%-8s inject=%-5v kill=%-5v allow-due=%v\n",
				sc.Name, sc.Workload, sc.Protocol, sc.Inject != nil, sc.KillAtCyc > 0, sc.AllowDUE)
		}
		return
	}
	if *scenario != "" {
		var picked []ras.Scenario
		for _, sc := range scenarios {
			if sc.Name == *scenario {
				picked = append(picked, sc)
			}
		}
		if len(picked) == 0 {
			fatal(fmt.Errorf("unknown scenario %q (use -list)", *scenario))
		}
		scenarios = picked
	}
	seeds := make([]int64, *nseeds)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}

	cc := ras.CampaignConfig{
		Seeds:      seeds,
		MeasureOps: *ops,
		Scenarios:  scenarios,
		OutDir:     *out,
		Progress:   func(r ras.RunReport) { report(r, *verbose) },
	}
	if *cacheDir != "" {
		store, err := results.Open(*cacheDir)
		if err != nil {
			fatal(err)
		}
		cc.Cache = store
	}
	res, err := ras.RunCampaign(cc)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\n%d runs, %d failed\n", len(res.Runs), res.Failures)
	if cc.Cache != nil {
		fmt.Fprintf(os.Stderr, "dvecampaign: cache %s\n", cc.Cache.Stats())
	}
	if res.Failures > 0 {
		os.Exit(1)
	}
}

func report(r ras.RunReport, verbose bool) {
	status := "ok"
	if !r.OK() {
		status = "FAIL"
	}
	c := &r.Counters
	fmt.Printf("%-18s seed=%d %-4s cycles=%-9d detect=%-5d retry=%d/%d recover=%-5d repair=%d/%d retire=%d degraded=%d due=%d demoted=%d sdc=%d\n",
		r.Scenario, r.Seed, status, r.Cycles,
		r.Journal.Count(coherence.EvDetect),
		c.RetrySuccesses, c.RetriedReads,
		c.Recoveries,
		c.RepairWrites-c.RepairVerifyFails, c.RepairWrites,
		c.PagesRetired, c.DegradedLines, c.DetectedUncorrect,
		c.DemotedLines, c.SilentCorruptions)
	if verbose {
		fmt.Printf("  journal: %d events (%s)\n", r.Journal.Len(), r.JournalPath)
		fmt.Printf("  injector: inject=%d escalate=%d harden=%d expire=%d  kill: sockets=%d drained-reads=%d dropped-writes=%d\n",
			r.Journal.Count(ras.EvInject), r.Journal.Count(ras.EvEscalate),
			r.Journal.Count(ras.EvHarden), r.Journal.Count(ras.EvExpire),
			c.SocketKills, c.DegradedReads, c.RepairVerifyFails)
	}
	for _, v := range r.Violations {
		fmt.Printf("  VIOLATION: %s\n", v)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dvecampaign:", err)
	os.Exit(1)
}
