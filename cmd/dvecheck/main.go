// Command dvecheck model-checks the Coherent Replication protocols
// (Section V-C4: "we have modeled the complete protocol in the Murφ model
// checker and exhaustively verified the protocol for deadlock-freedom and
// safety").
//
// Usage:
//
//	dvecheck                  # verify both protocol families
//	dvecheck -mode deny
//	dvecheck -demo-bugs       # show that seeded protocol bugs are caught
package main

import (
	"flag"
	"fmt"
	"os"

	"dve/internal/mcheck"
)

func main() {
	var (
		mode      = flag.String("mode", "both", "allow|deny|both")
		demoBugs  = flag.Bool("demo-bugs", false, "run seeded-bug demonstrations")
		showTrace = flag.Bool("trace", false, "print the counterexample path on failure")
		table     = flag.Bool("table", false, "print the replica-controller transition table")
	)
	flag.Parse()

	modes := []mcheck.Mode{mcheck.Allow, mcheck.Deny}
	switch *mode {
	case "allow":
		modes = modes[:1]
	case "deny":
		modes = modes[1:]
	case "both":
	default:
		fmt.Fprintf(os.Stderr, "dvecheck: unknown mode %q\n", *mode)
		os.Exit(1)
	}

	failed := false
	for _, m := range modes {
		r := mcheck.Check(m, mcheck.Options{})
		fmt.Println(r)
		if !r.OK() {
			failed = true
			for i, v := range r.Violations {
				if i >= 5 {
					fmt.Printf("  ... and %d more\n", len(r.Violations)-5)
					break
				}
				fmt.Printf("  %s\n", v.Error())
			}
			if *showTrace {
				fmt.Printf("  counterexample (%d states):\n", len(r.Trace))
				for _, k := range r.Trace {
					fmt.Printf("    %s\n", k)
				}
			}
		}
	}

	if *table {
		for _, m := range modes {
			entries, err := mcheck.ExtractTable(m)
			if err != nil {
				fmt.Fprintln(os.Stderr, "dvecheck:", err)
				os.Exit(1)
			}
			fmt.Println()
			fmt.Print(mcheck.FormatTable(m, entries))
		}
	}

	if *demoBugs {
		fmt.Println("\nSeeded-bug demonstrations (each must FAIL):")
		demos := []struct {
			name string
			m    mcheck.Mode
			b    mcheck.Bugs
		}{
			{"deny push skipped (deny)", mcheck.Deny, mcheck.Bugs{SkipDenyPush: true}},
			{"invalidate push skipped (allow)", mcheck.Allow, mcheck.Bugs{SkipDenyPush: true}},
			{"serve without entry (allow)", mcheck.Allow, mcheck.Bugs{ServeWithoutEntry: true}},
			{"dual writeback skipped (deny)", mcheck.Deny, mcheck.Bugs{SkipDualWriteback: true}},
			{"PutM/Fetch race mishandled (allow)", mcheck.Allow, mcheck.Bugs{DropFetchData: true}},
		}
		for _, d := range demos {
			r := mcheck.CheckWithBugs(d.m, mcheck.Options{StopAtFirst: true}, d.b)
			verdict := "NOT CAUGHT (checker bug!)"
			if !r.OK() {
				verdict = "caught: " + r.Violations[0].Desc
			}
			fmt.Printf("  %-36s %s\n", d.name, verdict)
		}
	}

	if failed {
		os.Exit(1)
	}
}
