// Command dvetrace records and replays multi-threaded memory traces — the
// role the Prism/SynchroTrace toolchain plays in the paper's methodology.
//
// Usage:
//
//	dvetrace -record fft.trc -workload fft -ops 2000000
//	dvetrace -info fft.trc
//	dvetrace -replay fft.trc -protocol deny -ops 500000
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	idve "dve/internal/dve"
	"dve/internal/topology"
	"dve/internal/trace"
	"dve/internal/workload"
)

func main() {
	var (
		record = flag.String("record", "", "capture a workload trace to this file")
		info   = flag.String("info", "", "print a trace file's summary")
		replay = flag.String("replay", "", "replay this trace through the simulator")
		name   = flag.String("workload", "fft", "benchmark to capture")
		proto  = flag.String("protocol", "deny", "protocol for -replay")
		ops    = flag.Uint64("ops", 1_000_000, "operations to capture / simulate")
	)
	flag.Parse()

	switch {
	case *record != "":
		spec, ok := workload.ByName(*name, 16)
		if !ok {
			fatal(fmt.Errorf("unknown workload %q", *name))
		}
		f, err := os.Create(*record)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		cst, err := trace.Capture(f, spec, *ops)
		if err != nil {
			fatal(err)
		}
		st, _ := f.Stat()
		fmt.Printf("captured %d ops of %s to %s (%d bytes)\n", cst.Ops, *name, *record, st.Size())
		if cst.ClampedCompute > 0 {
			fmt.Printf("warning: %d compute gaps exceeded the format's u16 field and were clamped to 65535;\n"+
				"replays of this trace run less compute between accesses than the generator\n", cst.ClampedCompute)
		}

	case *info != "":
		f, err := os.Open(*info)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		tr, err := trace.NewReader(f)
		if err != nil {
			fatal(err)
		}
		var reads, writes, barriers, saturated uint64
		perThread := map[uint8]uint64{}
		for {
			rec, err := tr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				fatal(err)
			}
			perThread[rec.Tid]++
			if rec.Kind != workload.Barrier && rec.Compute == 0xFFFF {
				// The format's compute field saturates at 0xFFFF, so records
				// at the ceiling are (almost certainly) clamped captures.
				saturated++
			}
			switch rec.Kind {
			case workload.Read:
				reads++
			case workload.Write:
				writes++
			case workload.Barrier:
				barriers++
			}
		}
		hdrOps := "unknown (producer could not seek)"
		if tr.Ops > 0 {
			hdrOps = fmt.Sprintf("%d", tr.Ops)
		}
		fmt.Printf("threads: %d\nheader ops: %s\nreads:   %d\nwrites:  %d\nbarriers: %d\nsaturated compute gaps: %d\n",
			tr.Threads, hdrOps, reads, writes, barriers, saturated)
		for t := 0; t < tr.Threads; t++ {
			fmt.Printf("  thread %2d: %d ops\n", t, perThread[uint8(t)])
		}

	case *replay != "":
		f, err := os.Open(*replay)
		if err != nil {
			fatal(err)
		}
		src, err := trace.Load(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		p, err := topology.ParseProtocol(*proto)
		if err != nil {
			fatal(err)
		}
		spec := workload.Spec{Name: "trace", Threads: src.Threads(), FootprintMB: 1}
		res, err := idve.Run(spec, idve.RunConfig{
			Cfg:        topology.Default(p),
			MeasureOps: *ops,
			Source:     src,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("replayed %d ops under %s: %d cycles, %d link bytes, %d replica reads\n",
			res.Counters.Ops, p, res.Cycles, res.Counters.LinkBytes, res.Counters.ReplicaReads)

	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dvetrace:", err)
	os.Exit(1)
}
