// Command dvelint runs the repo's custom static analyzers — the suite in
// internal/analysis that mechanically prevents the simulator's real bug
// classes:
//
//	deferredmutation  protocol state mutated across a sim.Engine scheduling
//	                  boundary (the PR 1 grant/fill-split race shape)
//	determinism       wall-clock reads, global math/rand, effectful map
//	                  iteration in simulation packages
//	statecover        non-exhaustive switches over protocol enums
//	guardedfield      "// guarded by <mu>" fields accessed without the lock
//
// Usage:
//
//	dvelint [-checks list] [packages]
//
// Packages default to ./... and accept the go tool's pattern syntax.
// Findings are suppressed with a justified //lint:ignore comment:
//
//	//lint:ignore determinism CLI-side reporting, never runs in simulation
//
// Exit status is 1 if any finding remains, 0 otherwise.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"dve/internal/analysis"
	"dve/internal/analysis/deferredmutation"
	"dve/internal/analysis/determinism"
	"dve/internal/analysis/guardedfield"
	"dve/internal/analysis/statecover"
)

var all = []*analysis.Analyzer{
	deferredmutation.Analyzer,
	determinism.Analyzer,
	guardedfield.Analyzer,
	statecover.Analyzer,
}

func main() {
	checks := flag.String("checks", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: dvelint [-checks list] [packages]\n\nanalyzers:\n")
		for _, a := range all {
			fmt.Fprintf(os.Stderr, "  %-18s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *list {
		for _, a := range all {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return
	}
	analyzers, err := selectAnalyzers(*checks)
	if err != nil {
		fatal(err)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	modPath, modDir, err := moduleInfo()
	if err != nil {
		fatal(err)
	}
	paths, err := listPackages(patterns)
	if err != nil {
		fatal(err)
	}
	loader := analysis.NewLoader(modDir, modPath)
	var pkgs []*analysis.Package
	for _, p := range paths {
		pkg, err := loader.Load(p)
		if err != nil {
			fatal(err)
		}
		pkgs = append(pkgs, pkg)
	}
	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fatal(err)
	}
	for _, d := range diags {
		pos := d.Position
		if rel, err := filepath.Rel(modDir, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			pos.Filename = rel
		}
		fmt.Printf("%s: %s (%s)\n", pos, d.Message, d.Analyzer)
	}
	if n := len(diags); n > 0 {
		fmt.Fprintf(os.Stderr, "dvelint: %d finding(s)\n", n)
		os.Exit(1)
	}
}

func selectAnalyzers(checks string) ([]*analysis.Analyzer, error) {
	if checks == "" {
		return all, nil
	}
	byName := map[string]*analysis.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(checks, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("dvelint: unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// moduleInfo asks the go tool for the enclosing module's path and root.
func moduleInfo() (path, dir string, err error) {
	out, err := goTool("list", "-m", "-f", "{{.Path}}\t{{.Dir}}")
	if err != nil {
		return "", "", err
	}
	fields := strings.SplitN(strings.TrimSpace(out), "\t", 2)
	if len(fields) != 2 {
		return "", "", fmt.Errorf("dvelint: cannot determine module: %q", out)
	}
	return fields[0], fields[1], nil
}

// listPackages expands go package patterns to import paths.
func listPackages(patterns []string) ([]string, error) {
	out, err := goTool(append([]string{"list"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	var paths []string
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if line = strings.TrimSpace(line); line != "" {
			paths = append(paths, line)
		}
	}
	return paths, nil
}

func goTool(args ...string) (string, error) {
	var stdout, stderr bytes.Buffer
	cmd := exec.Command("go", args...)
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return "", fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	return stdout.String(), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
