// Command dvelint runs the repo's custom static analyzers — the suite in
// internal/analysis that mechanically prevents the simulator's and the
// sweep fabric's real bug classes:
//
//	deferredmutation  protocol state mutated across a sim.Engine scheduling
//	                  boundary (the PR 1 grant/fill-split race shape)
//	determinism       wall-clock reads, global math/rand, effectful map
//	                  iteration in simulation packages
//	statecover        non-exhaustive switches over protocol enums
//	guardedfield      "// guarded by <mu>" fields accessed without the lock
//	lockhold          sync.Mutex/RWMutex held across a blocking operation
//	goleak            goroutines in long-lived types with no stop path
//	httpdiscipline    un-cancellable outbound RPCs, leaked response bodies,
//	                  handler writes after WriteHeader / silent error paths
//	atomicmix         fields accessed both atomically and plainly, and
//	                  guarded reference fields returned past their lock
//
// plus the built-in staleignore check, which flags //lint:ignore comments
// that no longer suppress anything (code fixed, analyzer renamed) or that
// lack the mandatory justification.
//
// Usage:
//
//	dvelint [-checks list] [-json] [packages]
//
// Packages default to ./... and accept the go tool's pattern syntax.
// Findings are suppressed with a justified //lint:ignore comment:
//
//	//lint:ignore determinism CLI-side reporting, never runs in simulation
//
// With -json, diagnostics are emitted as a single JSON document on stdout
// (suppressed findings included, marked) — the schema is documented in
// internal/analysis/README.md:
//
//	{
//	  "schema": "dvelint/v1",
//	  "findings": [
//	    {"file": "internal/serve/serve.go", "line": 41, "column": 2,
//	     "analyzer": "lockhold", "message": "...",
//	     "suppressed": false, "justification": ""}
//	  ],
//	  "count": {"active": 1, "suppressed": 0}
//	}
//
// Exit status is 1 if any active (unsuppressed) finding remains, 0
// otherwise — with or without -json.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"dve/internal/analysis"
	"dve/internal/analysis/atomicmix"
	"dve/internal/analysis/deferredmutation"
	"dve/internal/analysis/determinism"
	"dve/internal/analysis/goleak"
	"dve/internal/analysis/guardedfield"
	"dve/internal/analysis/httpdiscipline"
	"dve/internal/analysis/lockhold"
	"dve/internal/analysis/statecover"
)

var all = []*analysis.Analyzer{
	atomicmix.Analyzer,
	deferredmutation.Analyzer,
	determinism.Analyzer,
	goleak.Analyzer,
	guardedfield.Analyzer,
	httpdiscipline.Analyzer,
	lockhold.Analyzer,
	statecover.Analyzer,
}

// jsonReport is the -json document. Schema: dvelint/v1 (see the package
// comment and internal/analysis/README.md).
type jsonReport struct {
	Schema   string        `json:"schema"`
	Findings []jsonFinding `json:"findings"`
	Count    jsonCount     `json:"count"`
}

type jsonFinding struct {
	File          string `json:"file"`
	Line          int    `json:"line"`
	Column        int    `json:"column"`
	Analyzer      string `json:"analyzer"`
	Message       string `json:"message"`
	Suppressed    bool   `json:"suppressed"`
	Justification string `json:"justification,omitempty"`
}

type jsonCount struct {
	Active     int `json:"active"`
	Suppressed int `json:"suppressed"`
}

func main() {
	checks := flag.String("checks", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON (dvelint/v1) instead of text")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: dvelint [-checks list] [-json] [packages]\n\nanalyzers:\n")
		for _, a := range all {
			fmt.Fprintf(os.Stderr, "  %-18s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *list {
		for _, a := range all {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return
	}
	analyzers, err := selectAnalyzers(*checks)
	if err != nil {
		fatal(err)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	modPath, modDir, err := moduleInfo()
	if err != nil {
		fatal(err)
	}
	paths, err := listPackages(patterns)
	if err != nil {
		fatal(err)
	}
	loader := analysis.NewLoader(modDir, modPath)
	var pkgs []*analysis.Package
	for _, p := range paths {
		pkg, err := loader.Load(p)
		if err != nil {
			fatal(err)
		}
		pkgs = append(pkgs, pkg)
	}
	diags, err := analysis.RunAll(pkgs, analyzers)
	if err != nil {
		fatal(err)
	}

	active := 0
	for i := range diags {
		if rel, err := filepath.Rel(modDir, diags[i].Position.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].Position.Filename = rel
		}
		if !diags[i].Suppressed {
			active++
		}
	}

	if *jsonOut {
		writeJSON(diags, active)
	} else {
		for _, d := range diags {
			if d.Suppressed {
				continue
			}
			fmt.Printf("%s: %s (%s)\n", d.Position, d.Message, d.Analyzer)
		}
	}
	if active > 0 {
		fmt.Fprintf(os.Stderr, "dvelint: %d finding(s)\n", active)
		os.Exit(1)
	}
}

// writeJSON emits the dvelint/v1 document, suppressed findings included.
func writeJSON(diags []analysis.Diagnostic, active int) {
	report := jsonReport{
		Schema:   "dvelint/v1",
		Findings: []jsonFinding{}, // never null, even with zero findings
		Count:    jsonCount{Active: active, Suppressed: len(diags) - active},
	}
	for _, d := range diags {
		report.Findings = append(report.Findings, jsonFinding{
			File:          d.Position.Filename,
			Line:          d.Position.Line,
			Column:        d.Position.Column,
			Analyzer:      d.Analyzer,
			Message:       d.Message,
			Suppressed:    d.Suppressed,
			Justification: d.Justification,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fatal(err)
	}
}

func selectAnalyzers(checks string) ([]*analysis.Analyzer, error) {
	if checks == "" {
		return all, nil
	}
	byName := map[string]*analysis.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(checks, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("dvelint: unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// moduleInfo asks the go tool for the enclosing module's path and root.
func moduleInfo() (path, dir string, err error) {
	out, err := goTool("list", "-m", "-f", "{{.Path}}\t{{.Dir}}")
	if err != nil {
		return "", "", err
	}
	fields := strings.SplitN(strings.TrimSpace(out), "\t", 2)
	if len(fields) != 2 {
		return "", "", fmt.Errorf("dvelint: cannot determine module: %q", out)
	}
	return fields[0], fields[1], nil
}

// listPackages expands go package patterns to import paths.
func listPackages(patterns []string) ([]string, error) {
	out, err := goTool(append([]string{"list"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	var paths []string
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if line = strings.TrimSpace(line); line != "" {
			paths = append(paths, line)
		}
	}
	return paths, nil
}

func goTool(args ...string) (string, error) {
	var stdout, stderr bytes.Buffer
	cmd := exec.Command("go", args...)
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return "", fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	return stdout.String(), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
