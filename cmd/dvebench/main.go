// Command dvebench regenerates the paper's tables and figures.
//
// Usage:
//
//	dvebench -experiment all            # everything (Table I, Figs 1,6-10, energy)
//	dvebench -experiment fig6 -scale full
//	dvebench -experiment table1
//	dvebench -experiment verify         # model-check both protocols
//	dvebench -experiment bench -scale quick -json BENCH_quick.json
//	dvebench -experiment fig6 -cpuprofile cpu.out   # then: go tool pprof cpu.out
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dve/internal/dve"
	"dve/internal/experiments"
	"dve/internal/perf"
	"dve/internal/results"
	"dve/internal/stats"
)

func main() {
	var (
		exp      = flag.String("experiment", "all", "table1|fig1|fig6|fig7|fig8|fig9|fig10|energy|faults|verify|bench|all")
		scale    = flag.String("scale", "standard", "quick|standard|full")
		parallel = flag.Int("parallel", 8, "concurrent simulations")
		engine   = flag.String("engine", "", "simulation engine: auto|serial|parallel|legacy; with -experiment bench also \"both\" (the bench default) to measure serial and parallel in one report")
		jsonOut  = flag.String("json", "", "with -experiment bench: write the perf report to this BENCH_*.json file")
		check    = flag.String("check", "", "with -experiment bench: compare the fresh run against this committed BENCH_*.json baseline and exit nonzero on regression")
		checkOps = flag.Float64("check-min-ops", 0.5,
			"with -check: lowest acceptable fresh/baseline ops-per-sec ratio (wall time is host-dependent; negative disables)")
		checkAllocs = flag.Float64("check-allocs-growth", 0.25,
			"with -check: acceptable fractional growth in allocs/op, plus one alloc of absolute slack (negative disables)")
		cacheDir = flag.String("cache", "", "result cache directory (empty = no caching)")
		minHit   = flag.Float64("min-cache-hit", 0, "fail if the cache hit rate ends below this fraction (CI guard)")
		retries  = flag.Int("retries", 0, "per-cell retry budget")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a post-GC heap profile to this file on exit")
	)
	flag.Parse()

	stopCPU, err := perf.StartCPUProfile(*cpuProf)
	if err != nil {
		fatal(err)
	}
	defer stopCPU()
	defer func() {
		if err := perf.WriteHeapProfile(*memProf); err != nil {
			fatal(err)
		}
	}()

	r := experiments.Runner{Parallelism: *parallel, Retries: *retries}
	r.Scale, err = experiments.ScaleByName(*scale)
	if err != nil {
		fatal(err)
	}
	// -engine both only makes sense for bench (one report, two modes);
	// experiment matrices run under exactly one mode.
	if *exp != "bench" {
		r.Engine, err = dve.ParseEngineMode(*engine)
		if err != nil {
			fatal(err)
		}
	}
	var store *results.Store
	if *cacheDir != "" {
		store, err = results.Open(*cacheDir)
		if err != nil {
			fatal(err)
		}
		r.Cache = store
	}
	// The cache report runs after every experiment path, including the
	// -min-cache-hit CI guard (a cold cache with a threshold set means the
	// caching layer regressed).
	checkCache := func() {
		if store == nil {
			return
		}
		s := store.Stats()
		fmt.Fprintf(os.Stderr, "dvebench: cache %s\n", s)
		if *minHit > 0 && s.HitRate() < *minHit {
			fmt.Fprintf(os.Stderr, "dvebench: cache hit rate %.1f%% below required %.1f%%\n",
				100*s.HitRate(), 100**minHit)
			os.Exit(1)
		}
	}

	// bench measures the simulator itself rather than the paper's results;
	// it is opt-in only (not part of -experiment all).
	if *exp == "bench" {
		modes, err := experiments.BenchModes(*engine)
		if err != nil {
			fatal(err)
		}
		rep, err := r.Bench(*scale, modes...)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.FormatBench(rep))
		if *jsonOut != "" {
			if err := rep.WriteFile(*jsonOut); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", *jsonOut)
		}
		if *check != "" {
			base, err := perf.LoadReport(*check)
			if err != nil {
				fatal(err)
			}
			regs := perf.Compare(base, rep, perf.Tolerance{
				MinOpsRatio:     *checkOps,
				MaxAllocsGrowth: *checkAllocs,
			})
			fmt.Println(perf.FormatRegressions(regs, len(base.Runs)))
			if len(regs) > 0 {
				os.Exit(1)
			}
		}
		checkCache()
		return
	}

	want := func(name string) bool { return *exp == name || *exp == "all" }
	// Wall-clock timing goes through the stats stopwatch: the simulator
	// itself never reads the host clock (dvelint's determinism analyzer
	// enforces this), so CLI reporting is the only place time passes.
	sw := stats.StartWallClock()

	if want("table1") {
		fmt.Println(experiments.Table1())
	}
	if want("fig1") {
		fmt.Println(experiments.Fig1())
	}
	if want("verify") {
		fmt.Println(experiments.Verify())
	}

	needPerf := want("fig6") || want("fig7") || want("fig8") || want("energy")
	if needPerf {
		perf, err := r.Perf()
		if err != nil {
			fatal(err)
		}
		if want("fig6") {
			fmt.Println(experiments.FormatFig6(perf))
			fmt.Printf("Dvé vs Intel-mirroring++ (geomean all): allow %+.1f%%, deny %+.1f%%\n\n",
				(perf.Geomean("allow", 20)/perf.Geomean("intel-mirror++", 20)-1)*100,
				(perf.Geomean("deny", 20)/perf.Geomean("intel-mirror++", 20)-1)*100)
		}
		if want("fig7") {
			fmt.Println(experiments.FormatFig7(perf))
		}
		if want("fig8") {
			fmt.Println(experiments.FormatFig8(perf))
		}
		if want("energy") {
			fmt.Println(experiments.FormatEnergy(perf))
		}
	}
	if want("fig9") {
		f9, err := r.Fig9()
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.FormatFig9(f9))
	}
	if want("fig10") {
		f10, err := r.Fig10()
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.FormatFig10(f10))
	}
	if want("faults") {
		fc, err := r.FaultCampaign("graph500")
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.FormatFaultCampaign(fc))
	}
	checkCache()
	fmt.Printf("(completed in %v)\n", sw.ElapsedRounded(time.Millisecond))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dvebench:", err)
	os.Exit(1)
}
