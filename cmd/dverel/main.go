// Command dverel is the reliability calculator: it evaluates the Section IV
// analytical model for custom FIT rates, DIMM counts, and thermal gradients.
//
// Usage:
//
//	dverel                          # Table I with the paper's defaults
//	dverel -fit 100 -dimms 64       # custom population
//	dverel -thermal-step 12         # steeper intra-DIMM gradient
package main

import (
	"flag"
	"fmt"

	"dve/internal/reliability"
)

func main() {
	var (
		fit    = flag.Float64("fit", 66.1, "per-device FIT rate (failures per billion hours)")
		chips  = flag.Int("chips", 9, "chips per DIMM")
		dimms  = flag.Int("dimms", 32, "DIMMs in the system")
		window = flag.Float64("window", 1e-9, "scrub-interval coincidence factor")
		miss   = flag.Float64("detect-miss", 0.069, "detection miss probability beyond the code's guarantee")
		step   = flag.Float64("thermal-step", 8.2, "per-chip FIT increment across the thermal gradient")
	)
	flag.Parse()

	m := reliability.Model{
		FIT: *fit, ChipsPerDIMM: *chips, DIMMs: *dimms,
		Window: *window, DetectMiss: *miss,
	}

	fmt.Printf("%-16s %12s %12s\n", "scheme", "DUE", "SDC")
	print := func(name string, r reliability.Rates) {
		fmt.Printf("%-16s %12.3e %12.3e\n", name, r.DUE, r.SDC)
	}
	ck := m.Chipkill()
	print("Chipkill", ck)
	print("Dve+DSD", m.DveDSD())
	print("Dve+TSD", m.DveTSD())
	raim := m.RAIM(5, 8)
	print("IBM RAIM", raim)
	dck := m.DveChipkill()
	print("Dve+Chipkill", dck)
	fmt.Printf("\nDvé+DSD DUE improvement over Chipkill: %.2fx\n", ck.DUE/m.DveDSD().DUE)
	fmt.Printf("Dvé+Chipkill DUE improvement over RAIM: %.1fx\n", raim.DUE/dck.DUE)

	fits := reliability.ThermalFITs(*fit, *step, *chips)
	fmt.Printf("\nThermal gradient FITs: %.1f .. %.1f\n", fits[0], fits[len(fits)-1])
	ckT := m.ChipkillThermal(fits)
	intel := m.MirrorThermal(fits, false)
	dve := m.MirrorThermal(fits, true)
	print("Chipkill(T)", ckT)
	print("Intel+TSD(T)", intel)
	print("Dve+TSD(T)", dve)
	fmt.Printf("\nrisk-inverse mapping DUE reduction vs Intel mirroring: %.1f%%\n",
		(1-dve.DUE/intel.DUE)*100)
	fmt.Printf("Dvé+TSD(T) DUE improvement over Chipkill(T): %.2fx\n", ckT.DUE/dve.DUE)
}
