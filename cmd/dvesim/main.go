// Command dvesim runs one benchmark under one protocol configuration and
// prints detailed statistics.
//
// Usage:
//
//	dvesim -workload fft -protocol deny -ops 2000000 -warmup 500000
//	dvesim -workload xsbench -protocol dynamic -link-ns 60
//	dvesim -workload fft -protocol deny -trace-events trace.json   # open in Perfetto
//	dvesim -list
package main

import (
	"flag"
	"fmt"
	"os"

	"dve/internal/dve"
	"dve/internal/perf"
	"dve/internal/stats"
	"dve/internal/telemetry"
	"dve/internal/topology"
	"dve/internal/workload"
)

func main() {
	var (
		name    = flag.String("workload", "fft", "benchmark name (see -list)")
		proto   = flag.String("protocol", "deny", "baseline|allow|deny|dynamic|intel-mirror")
		ops     = flag.Uint64("ops", 1_000_000, "memory operations in the region of interest")
		warmup  = flag.Uint64("warmup", 250_000, "warmup operations before the ROI")
		linkNs  = flag.Float64("link-ns", 50, "inter-socket link latency (ns, one way)")
		rdSize  = flag.Int("rd-entries", 2048, "replica directory entries")
		noSpec  = flag.Bool("no-spec", false, "disable speculative replica access")
		coarse  = flag.Bool("coarse", false, "coarse-grain (region) replica directory")
		oracle  = flag.Bool("oracle", false, "oracular replica directory (Fig 9 ceiling)")
		baseCmp = flag.Bool("speedup", false, "also run the baseline and report speedup")
		engineF = flag.String("engine", "auto", "simulation engine: auto|serial|parallel|legacy")
		serial  = flag.Bool("serial", false, "shorthand for -engine serial")
		parF    = flag.Bool("parallel", false, "shorthand for -engine parallel")
		list    = flag.Bool("list", false, "list benchmarks and exit")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a post-GC heap profile to this file on exit")
		traceEv = flag.String("trace-events", "", "write a Chrome trace-event JSON timeline (open in Perfetto) to this file")
	)
	flag.Parse()

	stopCPU, err := perf.StartCPUProfile(*cpuProf)
	if err != nil {
		fatal(err)
	}
	defer stopCPU()
	defer func() {
		if err := perf.WriteHeapProfile(*memProf); err != nil {
			fatal(err)
		}
	}()

	if *list {
		for _, s := range workload.Suite(16) {
			fmt.Printf("%-16s footprint=%3dMB priv=%.2f sharedRO=%.2f locality=%.2f\n",
				s.Name, s.FootprintMB, s.PrivFrac, s.SharedROFrac, s.Locality)
		}
		return
	}

	p, err := parseProtocol(*proto)
	if err != nil {
		fatal(err)
	}
	spec, ok := workload.ByName(*name, 16)
	if !ok {
		fatal(fmt.Errorf("unknown workload %q (use -list)", *name))
	}

	cfg := topology.Default(p)
	cfg.InterSocketNs = *linkNs
	cfg.ReplicaDirEntries = *rdSize
	cfg.SpeculativeReads = !*noSpec
	cfg.CoarseGrain = *coarse
	cfg.Oracular = *oracle

	mode, err := dve.ParseEngineMode(*engineF)
	if err != nil {
		fatal(err)
	}
	if *serial && *parF {
		fatal(fmt.Errorf("-serial and -parallel are mutually exclusive"))
	}
	if *serial {
		mode = dve.EngineSerial
	}
	if *parF {
		mode = dve.EngineParallel
	}

	rc := dve.RunConfig{Cfg: cfg, WarmupOps: *warmup, MeasureOps: *ops,
		Engine:   mode,
		Classify: p == topology.ProtoBaseline}
	var tracer *telemetry.Tracer
	if *traceEv != "" {
		tracer = telemetry.NewTracer(telemetry.Options{
			TraceEvents: true, FlightRecorderLines: 256,
		})
		rc.Telemetry = tracer
	}
	res, err := dve.Run(spec, rc)
	if err != nil {
		fatal(err)
	}
	printResult(res)
	if tracer != nil {
		// Only the main run is traced: the -speedup baseline below runs on
		// a fresh engine whose clock restarts at zero, which would fold a
		// second timeline onto the same tracks.
		if err := tracer.WriteTraceFile(*traceEv); err != nil {
			fatal(err)
		}
		fmt.Printf("\ntrace: %d events -> %s (dropped %d)\n",
			tracer.Events(), *traceEv, tracer.Dropped())
	}

	if *baseCmp && p != topology.ProtoBaseline {
		bcfg := topology.Default(topology.ProtoBaseline)
		bcfg.InterSocketNs = *linkNs
		base, err := dve.Run(spec, dve.RunConfig{Cfg: bcfg, WarmupOps: *warmup, MeasureOps: *ops,
			Engine: mode})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nspeedup over baseline NUMA: %.3f\n",
			stats.Speedup(base.Cycles, res.Cycles))
		fmt.Printf("inter-socket traffic vs baseline: %.3f\n",
			float64(res.Counters.LinkBytes)/float64(base.Counters.LinkBytes))
	}
}

func parseProtocol(s string) (topology.Protocol, error) {
	for _, p := range []topology.Protocol{
		topology.ProtoBaseline, topology.ProtoAllow, topology.ProtoDeny,
		topology.ProtoDynamic, topology.ProtoIntelMirror,
	} {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("unknown protocol %q", s)
}

func printResult(res *dve.Result) {
	c := &res.Counters
	fmt.Printf("workload=%s protocol=%s engine=%s", res.Workload, res.Protocol, res.Engine)
	if res.Workers > 1 {
		fmt.Printf(" workers=%d", res.Workers)
	}
	fmt.Println()
	fmt.Printf("ROI cycles            %d\n", res.Cycles)
	if res.Counters.EngineEpochs > 0 {
		fmt.Printf("sync epochs           %d (%d barrier stalls)\n",
			res.Counters.EngineEpochs, res.Counters.EngineBarrierStalls)
	}
	fmt.Printf("ops                   %d (reads %d, writes %d)\n", c.Ops, c.Reads, c.Writes)
	fmt.Printf("L1 hit rate           %.4f\n", rate(c.L1Hits, c.L1Hits+c.L1Misses))
	fmt.Printf("LLC hit rate          %.4f  (MPKI %.2f)\n", rate(c.LLCHits, c.LLCHits+c.LLCMisses), c.MPKI())
	fmt.Printf("avg LLC-miss latency  %.1f cycles\n", c.AvgMemLatency())
	fmt.Printf("miss latency          %s\n", c.MissLatency.String())
	fmt.Printf("link traffic          %d msgs, %d bytes\n", c.LinkMsgs, c.LinkBytes)
	fmt.Printf("DRAM                  %d reads, %d writes, row-hit %.3f\n",
		c.DRAMReads, c.DRAMWrites, rate(c.RowHits, c.RowHits+c.RowMisses))
	if res.Protocol == topology.ProtoAllow || res.Protocol == topology.ProtoDeny ||
		res.Protocol == topology.ProtoDynamic {
		fmt.Printf("replica dir           hits %d, misses %d (hit rate %.3f)\n",
			c.ReplicaDirHits, c.ReplicaDirMisses, rate(c.ReplicaDirHits, c.ReplicaDirHits+c.ReplicaDirMisses))
		fmt.Printf("replica reads         %d (%.3f of LLC-miss reads served locally)\n",
			c.ReplicaReads, rate(c.ReplicaReads, c.ReplicaReads+c.HomeReads))
		fmt.Printf("speculative reads     %d issued, %d squashed\n", c.SpecIssued, c.SpecSquashed)
		fmt.Printf("dual writebacks       %d\n", c.DualWritebacks)
	}
	if res.Protocol == topology.ProtoDynamic {
		fmt.Printf("dynamic epochs        allow=%d deny=%d\n", c.EpochsAllow, c.EpochsDeny)
	}
	if mix := c.SharingMix(); mix != [4]float64{} {
		fmt.Printf("sharing classes       priv-read %.3f, read-only %.3f, read/write %.3f, priv-RW %.3f\n",
			mix[0], mix[1], mix[2], mix[3])
	}
	if c.CorrectedErrors+c.DetectedUncorrect > 0 {
		fmt.Printf("reliability           CE=%d recoveries=%d DUE=%d degraded=%d\n",
			c.CorrectedErrors, c.Recoveries, c.DetectedUncorrect, c.DegradedLines)
	}
}

func rate(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dvesim:", err)
	os.Exit(1)
}
