package dve

import (
	"testing"
)

// Tests of the public facade: the API a downstream user programs against.

func opts() SimOptions {
	return SimOptions{WarmupOps: 20_000, MeasureOps: 60_000}
}

func TestSimulateSpeedup(t *testing.T) {
	w, ok := WorkloadByName("graph500")
	if !ok {
		t.Fatal("workload lookup failed")
	}
	base, err := Simulate(w, DefaultConfig(Baseline), opts())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Simulate(w, DefaultConfig(Deny), opts())
	if err != nil {
		t.Fatal(err)
	}
	if s := Speedup(base, rep); s <= 1.0 {
		t.Fatalf("Dvé speedup = %.3f, want > 1", s)
	}
}

func TestWorkloadsSuite(t *testing.T) {
	if len(Workloads()) != 20 {
		t.Fatalf("%d workloads, want 20", len(Workloads()))
	}
	if _, ok := WorkloadByName("not-a-benchmark"); ok {
		t.Fatal("lookup of a bogus benchmark succeeded")
	}
}

func TestReliabilityFacade(t *testing.T) {
	m := Reliability()
	if impr := m.Chipkill().DUE / m.DveDSD().DUE; impr < 3.9 || impr > 4.1 {
		t.Fatalf("DUE improvement = %.2f, want 4x", impr)
	}
}

func TestVerifyProtocolFacade(t *testing.T) {
	for _, fam := range []string{"allow", "deny"} {
		verdict, ok := VerifyProtocol(fam)
		if !ok {
			t.Fatalf("%s protocol failed verification: %s", fam, verdict)
		}
	}
}

func TestOnDemandLifecycle(t *testing.T) {
	cfg := DefaultConfig(Deny)
	idle := make([]uint64, 0, 20_000)
	for p := uint64(1 << 20); p < 1<<20+20_000; p++ {
		idle = append(idle, p)
	}
	od := NewOnDemand(cfg, idle)
	n, err := od.Replicate(0, 1000)
	if err != nil || n != 1000 {
		t.Fatalf("Replicate = %d, %v", n, err)
	}
	if od.ReplicatedPages() != 1000 {
		t.Fatalf("ReplicatedPages = %d", od.ReplicatedPages())
	}

	w, _ := WorkloadByName("bfs")
	res, err := Simulate(w, cfg, SimOptions{
		WarmupOps: 20_000, MeasureOps: 60_000, OnDemand: od,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.ReplicaReads == 0 {
		t.Fatal("partially replicated run never used the replica")
	}

	if rel := od.Release(0, 1000); rel != 1000 {
		t.Fatalf("Release = %d", rel)
	}
	res2, err := Simulate(w, cfg, SimOptions{
		WarmupOps: 20_000, MeasureOps: 60_000, OnDemand: od,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Counters.ReplicaReads != 0 {
		t.Fatal("released pages still served from replicas")
	}
}

func TestFaultInjectionFacade(t *testing.T) {
	w, _ := WorkloadByName("xsbench")
	res, err := Simulate(w, DefaultConfig(Allow), SimOptions{
		MeasureOps: 40_000,
		Faults: func(socket int, addr uint64) bool {
			return socket == 1 && addr%4096 < 256
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Recoveries == 0 {
		t.Fatal("no recoveries despite injected faults")
	}
	if res.Counters.DetectedUncorrect != 0 {
		t.Fatal("single-sided faults must all recover via the replica")
	}
}
