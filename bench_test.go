package dve

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus ablations of the design choices DESIGN.md calls out.
// Each benchmark runs the corresponding experiment at Quick scale and
// reports the headline metric(s) via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// regenerates the paper's result shapes. cmd/dvebench produces the full
// formatted tables at larger scales.

import (
	"testing"

	idve "dve/internal/dve"
	"dve/internal/experiments"
	"dve/internal/mcheck"
	"dve/internal/reliability"
	"dve/internal/topology"
	"dve/internal/workload"
)

func quickRunner() experiments.Runner {
	return experiments.Runner{Scale: experiments.Quick, Parallelism: 8}
}

// BenchmarkTable1Reliability evaluates the Section IV analytical model (all
// Table I rows) per iteration and reports the headline improvements.
func BenchmarkTable1Reliability(b *testing.B) {
	m := reliability.Default()
	var dueImpr, raimImpr float64
	for i := 0; i < b.N; i++ {
		ck := m.Chipkill()
		dve := m.DveDSD()
		raim := m.RAIM(5, 8)
		dck := m.DveChipkill()
		_ = m.DveTSD()
		fits := reliability.ThermalFITs(66.1, 8.2, 9)
		_ = m.ChipkillThermal(fits)
		_ = m.MirrorThermal(fits, true)
		dueImpr = ck.DUE / dve.DUE
		raimImpr = raim.DUE / dck.DUE
	}
	b.ReportMetric(dueImpr, "DUE-improvement-vs-chipkill")
	b.ReportMetric(raimImpr, "DUE-improvement-vs-RAIM")
}

// BenchmarkFig1DesignPoints evaluates the design-point comparison.
func BenchmarkFig1DesignPoints(b *testing.B) {
	var cap float64
	for i := 0; i < b.N; i++ {
		pts := reliability.DesignPoints(reliability.Default())
		cap = pts[2].EffectiveCapacity
	}
	b.ReportMetric(cap*100, "dve-effective-capacity-%")
}

// benchWorkload simulates one benchmark under one protocol per iteration.
func benchWorkload(b *testing.B, name string, p topology.Protocol) *idve.Result {
	b.Helper()
	spec, ok := workload.ByName(name, 16)
	if !ok {
		b.Fatalf("unknown workload %s", name)
	}
	var res *idve.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = idve.Run(spec, idve.RunConfig{
			Cfg:        topology.Default(p),
			WarmupOps:  30_000,
			MeasureOps: 80_000,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	return res
}

// BenchmarkFig6Speedup reproduces the Fig 6 headline: geomean speedups of
// allow/deny/dynamic over baseline NUMA across the suite (a 3-benchmark
// subsample at bench scale; cmd/dvebench runs all 20).
func BenchmarkFig6Speedup(b *testing.B) {
	names := []string{"xsbench", "lbm", "fft"}
	for i := 0; i < b.N; i++ {
		r := quickRunner()
		r.Workloads = names
		perf, err := r.Perf()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(perf.Geomean("deny", len(names)), "deny-speedup")
		b.ReportMetric(perf.Geomean("allow", len(names)), "allow-speedup")
		b.ReportMetric(perf.Geomean("dynamic", len(names)), "dynamic-speedup")
		b.ReportMetric(perf.Geomean("intel-mirror++", len(names)), "intel-speedup")
	}
}

// BenchmarkFig7Classification measures the sharing-class distribution on the
// baseline (the Fig 7 data).
func BenchmarkFig7Classification(b *testing.B) {
	spec, _ := workload.ByName("canneal", 16)
	var mix [4]float64
	for i := 0; i < b.N; i++ {
		res, err := idve.Run(spec, idve.RunConfig{
			Cfg:        topology.Default(topology.ProtoBaseline),
			WarmupOps:  30_000,
			MeasureOps: 80_000,
			Classify:   true,
		})
		if err != nil {
			b.Fatal(err)
		}
		mix = res.Counters.SharingMix()
	}
	b.ReportMetric(mix[3], "private-RW-fraction")
}

// BenchmarkFig8Traffic measures inter-socket traffic reduction (Fig 8).
func BenchmarkFig8Traffic(b *testing.B) {
	spec, _ := workload.ByName("graph500", 16)
	var ratio float64
	for i := 0; i < b.N; i++ {
		base, err := idve.Run(spec, idve.RunConfig{
			Cfg: topology.Default(topology.ProtoBaseline), WarmupOps: 30_000, MeasureOps: 80_000})
		if err != nil {
			b.Fatal(err)
		}
		deny, err := idve.Run(spec, idve.RunConfig{
			Cfg: topology.Default(topology.ProtoDeny), WarmupOps: 30_000, MeasureOps: 80_000})
		if err != nil {
			b.Fatal(err)
		}
		ratio = float64(deny.Counters.LinkBytes) / float64(base.Counters.LinkBytes)
	}
	b.ReportMetric(ratio, "traffic-vs-baseline")
}

// BenchmarkFig9Optimizations compares the allow variants (2K/4K/coarse/
// oracle) on a stride-heavy benchmark.
func BenchmarkFig9Optimizations(b *testing.B) {
	spec, _ := workload.ByName("fft", 16)
	run := func(mod func(*topology.Config)) uint64 {
		cfg := topology.Default(topology.ProtoAllow)
		mod(&cfg)
		res, err := idve.Run(spec, idve.RunConfig{Cfg: cfg, WarmupOps: 30_000, MeasureOps: 80_000})
		if err != nil {
			b.Fatal(err)
		}
		return res.Cycles
	}
	for i := 0; i < b.N; i++ {
		base := run(func(c *topology.Config) { c.Protocol = topology.ProtoBaseline; c.ChannelsPerSkt = 1 })
		d2k := run(func(c *topology.Config) {})
		d4k := run(func(c *topology.Config) { c.ReplicaDirEntries = 4096 })
		oracle := run(func(c *topology.Config) { c.Oracular = true })
		b.ReportMetric(float64(base)/float64(d2k), "allow-2k-speedup")
		b.ReportMetric(float64(base)/float64(d4k), "allow-4k-speedup")
		b.ReportMetric(float64(base)/float64(oracle), "oracle-speedup")
	}
}

// BenchmarkFig10LinkLatency sweeps the inter-socket latency (Fig 10).
func BenchmarkFig10LinkLatency(b *testing.B) {
	spec, _ := workload.ByName("bfs", 16)
	for i := 0; i < b.N; i++ {
		for _, ns := range experiments.Fig10Latencies {
			bcfg := topology.Default(topology.ProtoBaseline)
			bcfg.InterSocketNs = ns
			base, err := idve.Run(spec, idve.RunConfig{Cfg: bcfg, WarmupOps: 30_000, MeasureOps: 80_000})
			if err != nil {
				b.Fatal(err)
			}
			dcfg := topology.Default(topology.ProtoDeny)
			dcfg.InterSocketNs = ns
			deny, err := idve.Run(spec, idve.RunConfig{Cfg: dcfg, WarmupOps: 30_000, MeasureOps: 80_000})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(base.Cycles)/float64(deny.Cycles),
				"deny-speedup-"+map[float64]string{30: "30ns", 50: "50ns", 60: "60ns"}[ns])
		}
	}
}

// BenchmarkEnergyEDP reproduces the Section VII energy study shape.
func BenchmarkEnergyEDP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := quickRunner()
		r.Workloads = []string{"graph500", "lbm"}
		perf, err := r.Perf()
		if err != nil {
			b.Fatal(err)
		}
		mem, sys := perf.GeomeanEDP("deny")
		b.ReportMetric(mem, "memory-EDP-vs-baseline")
		b.ReportMetric(sys, "system-EDP-vs-baseline")
	}
}

// BenchmarkProtocolVerification model-checks both protocol families
// (Section V-C4).
func BenchmarkProtocolVerification(b *testing.B) {
	var states int
	for i := 0; i < b.N; i++ {
		a := mcheck.Check(mcheck.Allow, mcheck.Options{})
		d := mcheck.Check(mcheck.Deny, mcheck.Options{})
		if !a.OK() || !d.OK() {
			b.Fatal("protocol verification failed")
		}
		states = a.States + d.States
	}
	b.ReportMetric(float64(states), "states-explored")
}

// --- Ablations (DESIGN.md section 4) ---------------------------------------

// BenchmarkAblationSpeculativeReads quantifies the speculative replica
// access optimization.
func BenchmarkAblationSpeculativeReads(b *testing.B) {
	spec, _ := workload.ByName("xsbench", 16)
	for i := 0; i < b.N; i++ {
		on := topology.Default(topology.ProtoAllow)
		off := topology.Default(topology.ProtoAllow)
		off.SpeculativeReads = false
		ron, err := idve.Run(spec, idve.RunConfig{Cfg: on, WarmupOps: 30_000, MeasureOps: 80_000})
		if err != nil {
			b.Fatal(err)
		}
		roff, err := idve.Run(spec, idve.RunConfig{Cfg: off, WarmupOps: 30_000, MeasureOps: 80_000})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(roff.Cycles)/float64(ron.Cycles), "spec-speedup")
	}
}

// BenchmarkAblationDualWriteback measures the overhead of keeping the
// replica synchronously consistent (replicated vs baseline writes).
func BenchmarkAblationDualWriteback(b *testing.B) {
	spec, _ := workload.ByName("lbm", 16)
	for i := 0; i < b.N; i++ {
		res, err := idve.Run(spec, idve.RunConfig{
			Cfg: topology.Default(topology.ProtoDeny), WarmupOps: 30_000, MeasureOps: 80_000})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Counters.DualWritebacks), "dual-writebacks")
	}
}

// BenchmarkSimulatorThroughput reports raw simulator speed (ops simulated
// per wall second matter for experiment turnaround).
func BenchmarkSimulatorThroughput(b *testing.B) {
	spec, _ := workload.ByName("fft", 16)
	b.ResetTimer()
	var ops uint64
	for i := 0; i < b.N; i++ {
		res, err := idve.Run(spec, idve.RunConfig{
			Cfg: topology.Default(topology.ProtoDeny), MeasureOps: 50_000})
		if err != nil {
			b.Fatal(err)
		}
		ops += res.Counters.Ops
	}
	b.ReportMetric(float64(ops)/b.Elapsed().Seconds(), "sim-ops/s")
}
